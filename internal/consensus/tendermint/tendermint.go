// Package tendermint implements the Tendermint consensus protocol (Kwon,
// 2014) as characterized in §2.3.3 of the tutorial: a PBFT-family
// protocol that (1) restricts participation to validators, (2) rotates
// the proposer every round in a round-robin manner, and (3) weighs votes
// by stake — quorums are two-thirds of total voting power, not
// two-thirds of the validator count.
//
// Heights are decided one at a time through propose → prevote →
// precommit rounds with value locking: once a validator sees a polka
// (two-thirds prevote power for a value) it locks that value and only
// releases the lock for a newer polka, which is what makes two conflicting
// decisions impossible across rounds.
package tendermint

import (
	"sync"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/types"
)

const (
	msgProposal  = "tm/proposal"
	msgPrevote   = "tm/prevote"
	msgPrecommit = "tm/precommit"
	msgRequest   = "tm/request"
	msgSyncReq   = "tm/syncreq"
	msgSyncRep   = "tm/syncrep"
)

// syncBatch bounds how many decided heights one sync request replays.
const syncBatch = 64

// Config adds the validator stake table to the shared consensus config.
type Config struct {
	consensus.Config
	// Stakes aligns with Nodes; nil means every validator has stake 1.
	// Voting power is proportional to stake (bonded coins).
	Stakes []int64
}

type proposal struct {
	Height uint64
	Round  uint64
	Digest types.Hash
	Value  any
	Sig    []byte
}

type voteMsg struct { // prevote or precommit; zero digest = nil vote
	Height uint64
	Round  uint64
	Digest types.Hash
	Sig    []byte
}

type request struct {
	Digest types.Hash
	Value  any
}

// syncReq advertises the sender's next undecided height; peers that have
// decided it reply with the missing heights. It doubles as low-rate
// progress gossip: a receiver that is itself behind the advertised height
// learns so and issues its own request.
type syncReq struct {
	Height uint64
}

// syncRep carries one decided height. Adoption is quorum-guarded: a
// laggard applies a height only once replies carrying more than one third
// of total voting power agree on the digest — more than Byzantine
// validators can muster, so at least one correct validator vouches.
type syncRep struct {
	Height uint64
	Digest types.Hash
	Value  any
}

type step int

const (
	stepPropose step = iota
	stepPrevote
	stepPrecommit
)

// roundState accumulates votes for one (height, round).
type roundState struct {
	proposal      *proposal
	prevotes      map[types.NodeID]types.Hash
	precommits    map[types.NodeID]types.Hash
	sentPrevote   bool
	sentPrecommit bool
}

func newRoundState() *roundState {
	return &roundState{
		prevotes:   map[types.NodeID]types.Hash{},
		precommits: map[types.NodeID]types.Hash{},
	}
}

// Replica is one Tendermint validator.
type Replica struct {
	cfg    Config
	ep     *network.Endpoint
	stakes map[types.NodeID]int64
	total  int64
	order  []types.NodeID // proposer rotation, stake-proportional

	decCh    chan consensus.Decision
	submitCh chan request
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Event-loop state.
	height      uint64
	round       uint64
	step        step
	active      bool
	rounds      map[uint64]*roundState // round → state, current height
	lockedVal   any
	lockedDig   types.Hash
	lockedRound int64 // -1 = not locked
	values      map[types.Hash]any
	pending     []types.Hash
	pendingSet  map[types.Hash]bool
	decidedDig  map[types.Hash]bool
	future      []network.Message  // buffered messages for later heights
	history     map[uint64]request // decided height → (digest, value), for laggard replay
	syncVotes   map[uint64]map[types.NodeID]syncRep
	lastSyncReq uint64 // height of the last sync request sent (dedupe)
	timer       *consensus.LoopTimer
}

// New creates a Tendermint validator. Call Start to launch it.
func New(cfg Config) *Replica {
	cfg.Config = cfg.Config.Defaulted()
	r := &Replica{
		cfg:         cfg,
		ep:          cfg.Net.Join(cfg.Self),
		stakes:      map[types.NodeID]int64{},
		decCh:       make(chan consensus.Decision, 65536),
		submitCh:    make(chan request, 65536),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
		height:      1,
		rounds:      map[uint64]*roundState{},
		lockedRound: -1,
		values:      map[types.Hash]any{},
		pendingSet:  map[types.Hash]bool{},
		decidedDig:  map[types.Hash]bool{},
		history:     map[uint64]request{},
		syncVotes:   map[uint64]map[types.NodeID]syncRep{},
		timer:       consensus.NewLoopTimer(),
	}
	for i, id := range cfg.Nodes {
		s := int64(1)
		if cfg.Stakes != nil {
			s = cfg.Stakes[i]
		}
		if s < 1 {
			s = 1
		}
		r.stakes[id] = s
		r.total += s
		// The rotation schedule lists each validator once per unit of
		// stake: a validator with twice the stake proposes twice as often.
		for k := int64(0); k < s; k++ {
			r.order = append(r.order, id)
		}
	}
	return r
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.NodeID { return r.cfg.Self }

// Decisions implements consensus.Replica.
func (r *Replica) Decisions() <-chan consensus.Decision { return r.decCh }

// Start implements consensus.Replica.
func (r *Replica) Start() { go r.loop() }

// Stop implements consensus.Replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
}

// Submit implements consensus.Replica.
func (r *Replica) Submit(value any, digest types.Hash) {
	r.cfg.Obs.Mark(digest, 0, obs.PhaseSubmit)
	select {
	case r.submitCh <- request{Digest: digest, Value: value}:
	case <-r.stopCh:
	}
}

// proposer returns the rotation slot for (height, round).
func (r *Replica) proposer(height, round uint64) types.NodeID {
	return r.order[int((height+round)%uint64(len(r.order)))]
}

// powerFor sums the voting power behind digest d in the given vote map.
func (r *Replica) powerFor(votes map[types.NodeID]types.Hash, d types.Hash) int64 {
	var p int64
	for id, v := range votes {
		if v == d {
			p += r.stakes[id]
		}
	}
	return p
}

// quorum reports whether power exceeds two-thirds of total voting power.
func (r *Replica) quorum(power int64) bool { return 3*power > 2*r.total }

func (r *Replica) loop() {
	defer close(r.done)
	defer r.timer.Stop()
	// Low-rate progress gossip: advertising our next undecided height lets
	// a restarted or partitioned-away validator discover it is behind even
	// when the cluster is otherwise idle.
	gossip := time.NewTicker(r.cfg.Timeout * 4)
	defer gossip.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case req := <-r.submitCh:
			r.onSubmit(req)
		case m := <-r.ep.Inbox():
			r.onMessage(m)
		case <-r.timer.C():
			r.onTimeout()
		case <-gossip.C:
			if r.height > 1 {
				r.ep.Multicast(r.cfg.Nodes, msgSyncReq, syncReq{Height: r.height})
			}
		}
	}
}

func (r *Replica) onSubmit(req request) {
	// Spread the value to every validator: any of them may be the
	// proposer who includes it.
	r.ep.Multicast(r.cfg.Nodes, msgRequest, req)
	r.onRequest(req)
}

func (r *Replica) onRequest(req request) {
	if r.decidedDig[req.Digest] || r.pendingSet[req.Digest] {
		return
	}
	r.values[req.Digest] = req.Value
	r.pendingSet[req.Digest] = true
	r.pending = append(r.pending, req.Digest)
	r.ensureActive()
}

// ensureActive starts the consensus state machine when there is work.
func (r *Replica) ensureActive() {
	if r.active || len(r.pending) == 0 {
		return
	}
	r.active = true
	r.startRound(r.round)
}

func (r *Replica) roundState(round uint64) *roundState {
	rs, ok := r.rounds[round]
	if !ok {
		rs = newRoundState()
		r.rounds[round] = rs
	}
	return rs
}

func (r *Replica) startRound(round uint64) {
	if round > 0 {
		r.cfg.Obs.Inc("tendermint/extra_rounds")
		r.cfg.Obs.NoteViewChange()
		r.cfg.Obs.Logger("tendermint").Warn("extra round",
			"node", int(r.cfg.Self), "height", r.height, "round", round)
	}
	r.round = round
	r.cfg.Obs.SetGauge("tendermint/round", int64(round))
	r.step = stepPropose
	r.timer.Reset(r.cfg.Timeout)
	if r.proposer(r.height, round) != r.cfg.Self {
		return
	}
	// Proposer: re-propose the locked value, else the oldest pending one.
	dig, val := r.lockedDig, r.lockedVal
	if r.lockedRound < 0 {
		for len(r.pending) > 0 && r.decidedDig[r.pending[0]] {
			r.dropPendingHead()
		}
		if len(r.pending) == 0 {
			return // nothing to propose; peers will time this round out
		}
		dig = r.pending[0]
		val = r.values[dig]
	}
	p := proposal{
		Height: r.height, Round: round, Digest: dig, Value: val,
		Sig: r.cfg.SignPart([]byte(msgProposal), consensus.U64(r.height), consensus.U64(round), dig[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgProposal, p)
	r.onProposal(r.cfg.Self, p)
}

func (r *Replica) dropPendingHead() {
	delete(r.pendingSet, r.pending[0])
	r.pending = r.pending[1:]
}

func (r *Replica) onMessage(m network.Message) {
	if !r.cfg.IsMember(m.From) {
		return // not part of this replica group
	}
	switch m.Type {
	case msgRequest:
		req, ok := m.Payload.(request)
		if !ok {
			return
		}
		r.onRequest(req)
		return
	case msgProposal:
		p, ok := m.Payload.(proposal)
		if !ok {
			return
		}
		if p.Height > r.height {
			r.buffer(m)
			return
		}
		if !r.cfg.VerifyPart(m.From, p.Sig, []byte(msgProposal), consensus.U64(p.Height), consensus.U64(p.Round), p.Digest[:]) {
			return
		}
		r.onProposal(m.From, p)
	case msgPrevote, msgPrecommit:
		v, ok := m.Payload.(voteMsg)
		if !ok {
			return
		}
		if v.Height > r.height {
			r.buffer(m)
			return
		}
		if !r.cfg.VerifyPart(m.From, v.Sig, []byte(m.Type), consensus.U64(v.Height), consensus.U64(v.Round), v.Digest[:]) {
			return
		}
		if m.Type == msgPrevote {
			r.onPrevote(m.From, v)
		} else {
			r.onPrecommit(m.From, v)
		}
	case msgSyncReq:
		q, ok := m.Payload.(syncReq)
		if !ok {
			return
		}
		r.onSyncReq(m.From, q)
	case msgSyncRep:
		rep, ok := m.Payload.(syncRep)
		if !ok {
			return
		}
		r.onSyncRep(m.From, rep)
	}
}

func (r *Replica) onSyncReq(from types.NodeID, q syncReq) {
	if q.Height < r.height {
		// The asker is behind: replay a bounded window of decided heights.
		end := q.Height + syncBatch
		if end > r.height {
			end = r.height
		}
		for h := q.Height; h < end; h++ {
			if req, ok := r.history[h]; ok {
				r.ep.Send(from, msgSyncRep, syncRep{Height: h, Digest: req.Digest, Value: req.Value})
			}
		}
		return
	}
	if q.Height > r.height {
		// The asker is ahead: we are the laggard. Gossip repeats every few
		// timeouts, so requesting on every such beacon also retries after
		// lost replies.
		r.cfg.Obs.Inc("tendermint/sync_fetches")
		r.ep.Multicast(r.cfg.Nodes, msgSyncReq, syncReq{Height: r.height})
	}
}

func (r *Replica) onSyncRep(from types.NodeID, rep syncRep) {
	if rep.Height < r.height {
		return
	}
	m, ok := r.syncVotes[rep.Height]
	if !ok {
		m = map[types.NodeID]syncRep{}
		r.syncVotes[rep.Height] = m
	}
	m[from] = rep
	r.trySyncDecide()
}

// trySyncDecide adopts replayed heights in order once each gathers replies
// worth more than one third of total voting power on one digest.
func (r *Replica) trySyncDecide() {
	for {
		votes, ok := r.syncVotes[r.height]
		if !ok {
			return
		}
		powers := map[types.Hash]int64{}
		for id, rep := range votes {
			powers[rep.Digest] += r.stakes[id]
		}
		var winner types.Hash
		found := false
		for dig, p := range powers {
			if 3*p > r.total {
				winner = dig
				found = true
				break
			}
		}
		if !found {
			return
		}
		var val any
		for _, rep := range votes {
			if rep.Digest == winner {
				val = rep.Value
				break
			}
		}
		delete(r.syncVotes, r.height)
		r.values[winner] = val
		r.decide(winner) // advances r.height; loop to check the next one
	}
}

// buffer holds a message for a future height, bounded to keep a Byzantine
// flood from growing memory without limit.
func (r *Replica) buffer(m network.Message) {
	const maxFuture = 100000
	if len(r.future) < maxFuture {
		r.future = append(r.future, m)
	}
	// Traffic for a future height means the cluster decided heights we
	// missed (crash, partition): request a replay. Deduped per height —
	// each adopted batch re-triggers naturally as buffered messages replay.
	if r.lastSyncReq != r.height {
		r.lastSyncReq = r.height
		r.cfg.Obs.Inc("tendermint/sync_fetches")
		r.ep.Multicast(r.cfg.Nodes, msgSyncReq, syncReq{Height: r.height})
	}
}

func (r *Replica) replayFuture() {
	msgs := r.future
	r.future = nil
	for _, m := range msgs {
		r.onMessage(m)
	}
}

func (r *Replica) onProposal(from types.NodeID, p proposal) {
	if p.Height != r.height || from != r.proposer(p.Height, p.Round) {
		return
	}
	r.active = true
	rs := r.roundState(p.Round)
	if rs.proposal != nil {
		return // one proposal per round; equivocation ignored
	}
	rs.proposal = &p
	r.values[p.Digest] = p.Value
	r.cfg.Obs.Mark(p.Digest, p.Height, obs.PhasePropose)
	if p.Round != r.round {
		return
	}
	r.maybePrevote(p.Round)
}

// maybePrevote casts the prevote for the current round's proposal,
// honoring the lock.
func (r *Replica) maybePrevote(round uint64) {
	rs := r.roundState(round)
	if rs.sentPrevote || rs.proposal == nil || round != r.round {
		return
	}
	dig := rs.proposal.Digest
	if r.lockedRound >= 0 && r.lockedDig != dig {
		dig = types.ZeroHash // locked elsewhere: prevote nil
	}
	rs.sentPrevote = true
	r.step = stepPrevote
	r.timer.Reset(r.cfg.Timeout)
	v := voteMsg{
		Height: r.height, Round: round, Digest: dig,
		Sig: r.cfg.SignPart([]byte(msgPrevote), consensus.U64(r.height), consensus.U64(round), dig[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgPrevote, v)
	r.onPrevote(r.cfg.Self, v)
}

func (r *Replica) onPrevote(from types.NodeID, v voteMsg) {
	if v.Height != r.height {
		return
	}
	r.active = true
	rs := r.roundState(v.Round)
	if _, dup := rs.prevotes[from]; dup {
		return
	}
	rs.prevotes[from] = v.Digest

	// A polka for a real value locks it and triggers the precommit.
	if !v.Digest.IsZero() && r.quorum(r.powerFor(rs.prevotes, v.Digest)) {
		if int64(v.Round) >= r.lockedRound {
			r.lockedRound = int64(v.Round)
			r.lockedDig = v.Digest
			r.lockedVal = r.values[v.Digest]
		}
		r.cfg.Obs.Mark(v.Digest, r.height, obs.PhasePrepare)
		r.sendPrecommit(v.Round, v.Digest)
		return
	}
	// A nil polka in the current round means this round is dead.
	if v.Digest.IsZero() && v.Round == r.round && r.quorum(r.powerFor(rs.prevotes, types.ZeroHash)) {
		r.sendPrecommit(v.Round, types.ZeroHash)
	}
}

func (r *Replica) sendPrecommit(round uint64, dig types.Hash) {
	rs := r.roundState(round)
	if rs.sentPrecommit {
		return
	}
	rs.sentPrecommit = true
	if !dig.IsZero() {
		r.cfg.Obs.Mark(dig, r.height, obs.PhasePreCommit)
	}
	if round == r.round {
		r.step = stepPrecommit
		r.timer.Reset(r.cfg.Timeout)
	}
	v := voteMsg{
		Height: r.height, Round: round, Digest: dig,
		Sig: r.cfg.SignPart([]byte(msgPrecommit), consensus.U64(r.height), consensus.U64(round), dig[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgPrecommit, v)
	r.onPrecommit(r.cfg.Self, v)
}

func (r *Replica) onPrecommit(from types.NodeID, v voteMsg) {
	if v.Height != r.height {
		return
	}
	r.active = true
	rs := r.roundState(v.Round)
	if _, dup := rs.precommits[from]; dup {
		return
	}
	rs.precommits[from] = v.Digest

	// Two-thirds precommit power for a value decides the height, whatever
	// round it happened in.
	if !v.Digest.IsZero() && r.quorum(r.powerFor(rs.precommits, v.Digest)) {
		r.decide(v.Digest)
		return
	}
	// A nil precommit quorum for the current round advances the round.
	if v.Digest.IsZero() && v.Round == r.round && r.quorum(r.powerFor(rs.precommits, types.ZeroHash)) {
		r.startRound(r.round + 1)
	}
}

func (r *Replica) decide(dig types.Hash) {
	val := r.values[dig]
	r.decidedDig[dig] = true
	r.history[r.height] = request{Digest: dig, Value: val}
	r.cfg.Obs.MarkLatency("tendermint/commit_latency", dig, r.height, obs.PhasePropose, obs.PhaseCommit)
	r.cfg.Obs.Mark(dig, r.height, obs.PhaseApply)
	r.cfg.Obs.Inc("tendermint/decisions")
	r.decCh <- consensus.Decision{Seq: r.height, Digest: dig, Value: val, Node: r.cfg.Self}

	// Reset for the next height.
	r.height++
	r.round = 0
	r.rounds = map[uint64]*roundState{}
	r.lockedRound = -1
	r.lockedDig = types.ZeroHash
	r.lockedVal = nil
	for len(r.pending) > 0 && r.decidedDig[r.pending[0]] {
		r.dropPendingHead()
	}
	r.active = false
	r.timer.Stop()
	r.replayFuture()
	r.ensureActive()
}

func (r *Replica) onTimeout() {
	if !r.active {
		return
	}
	switch r.step {
	case stepPropose:
		// No proposal: prevote nil.
		rs := r.roundState(r.round)
		if !rs.sentPrevote {
			rs.sentPrevote = true
			r.step = stepPrevote
			r.timer.Reset(r.cfg.Timeout)
			v := voteMsg{
				Height: r.height, Round: r.round, Digest: types.ZeroHash,
				Sig: r.cfg.SignPart([]byte(msgPrevote), consensus.U64(r.height), consensus.U64(r.round), types.ZeroHash[:]),
			}
			r.ep.Multicast(r.cfg.Nodes, msgPrevote, v)
			r.onPrevote(r.cfg.Self, v)
		}
	case stepPrevote:
		// No polka: precommit nil.
		r.sendPrecommit(r.round, types.ZeroHash)
	case stepPrecommit:
		// No decision: next round.
		r.startRound(r.round + 1)
	}
}
