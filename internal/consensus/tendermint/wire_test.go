package tendermint

import (
	"reflect"
	"testing"

	"permchain/internal/types"
	"permchain/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	dig := types.HashBytes([]byte("value"))
	msgs := []any{
		proposal{Height: 5, Round: 0, Digest: dig, Value: "payload", Sig: []byte("p")},
		voteMsg{Height: 5, Round: 0, Digest: dig, Sig: []byte("v")},
		voteMsg{Height: 5, Round: 1}, // nil vote: zero digest
		request{Digest: dig, Value: "payload"},
		syncReq{Height: 5},
		syncRep{Height: 5, Digest: dig, Value: "payload"},
	}
	for _, m := range msgs {
		e := wire.GetEncoder()
		if err := wire.EncodeFrame(e, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := wire.DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\ngot  %#v\nwant %#v", m, got, m)
		}
		wire.PutEncoder(e)
	}
}
