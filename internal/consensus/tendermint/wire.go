package tendermint

import (
	"permchain/internal/wire"
)

// Frame codecs for every tendermint message (wire tags 112–127).
var (
	proposalCodec = wire.Register[proposal](112, putProposal, getProposal)
	voteCodec     = wire.Register[voteMsg](113, putVote, getVote)
	requestCodec  = wire.Register[request](114, putRequest, getRequest)
	syncReqCodec  = wire.Register[syncReq](115, putSyncReq, getSyncReq)
	syncRepCodec  = wire.Register[syncRep](116, putSyncRep, getSyncRep)
)

func init() {
	wire.Intern(msgProposal, msgPrevote, msgPrecommit, msgRequest,
		msgSyncReq, msgSyncRep)
}

func putProposal(e *wire.Encoder, m *proposal) {
	e.U64(m.Height)
	e.U64(m.Round)
	e.Hash(m.Digest)
	e.Any(m.Value)
	e.Bytes(m.Sig)
}

func getProposal(d *wire.Decoder, m *proposal) {
	m.Height = d.U64()
	m.Round = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
	m.Sig = d.AppendBytes(m.Sig)
}

func putVote(e *wire.Encoder, m *voteMsg) {
	e.U64(m.Height)
	e.U64(m.Round)
	e.Hash(m.Digest)
	e.Bytes(m.Sig)
}

func getVote(d *wire.Decoder, m *voteMsg) {
	m.Height = d.U64()
	m.Round = d.U64()
	m.Digest = d.Hash()
	m.Sig = d.AppendBytes(m.Sig)
}

func putRequest(e *wire.Encoder, m *request) {
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getRequest(d *wire.Decoder, m *request) {
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putSyncReq(e *wire.Encoder, m *syncReq) { e.U64(m.Height) }

func getSyncReq(d *wire.Decoder, m *syncReq) { m.Height = d.U64() }

func putSyncRep(e *wire.Encoder, m *syncRep) {
	e.U64(m.Height)
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getSyncRep(d *wire.Decoder, m *syncRep) {
	m.Height = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
}
