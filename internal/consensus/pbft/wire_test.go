package pbft

import (
	"math/big"
	"reflect"
	"testing"

	"permchain/internal/quorumcert"
	"permchain/internal/types"
	"permchain/internal/wire"
)

// TestWireRoundTrip pushes one populated instance of every pbft message
// through the generic frame dispatch and requires value equality — the
// property the serialized transport depends on.
func TestWireRoundTrip(t *testing.T) {
	dig := types.HashBytes([]byte("value"))
	msgs := []any{
		request{Digest: dig, Value: "payload"},
		prePrepare{View: 1, Seq: 2, Digest: dig, Value: "payload", Sig: []byte("s")},
		vote{View: 1, Seq: 2, Digest: dig, Sig: []byte("sig")},
		partialMsg{View: 1, Seq: 2, Digest: dig, Part: quorumcert.Partial{Signer: 3, R: big.NewInt(5), S: big.NewInt(6)}},
		certMsg{View: 1, Seq: 2, Digest: dig, Cert: quorumcert.QuorumCert{
			Statement: quorumcert.Statement{Domain: msgPrepare, View: 1, Seq: 2, Digest: dig},
			Bitmap:    []uint64{0b111}, R: big.NewInt(7), S: big.NewInt(8),
		}},
		viewChange{NewView: 4, Prepared: []preparedCert{{Seq: 2, Digest: dig, Value: "payload"}}, Sig: []byte("vc")},
		newView{NewView: 4, Certs: []preparedCert{{Seq: 2, Digest: dig, Value: "payload"}}, MaxSeq: 9, Sig: []byte("nv")},
		fetch{Seq: 2},
		fetchReply{Seq: 2, Digest: dig, Value: "payload"},
		status{LastExec: 7, Sig: []byte("st")},
		checkpoint{Seq: 10, Hist: dig, Sig: []byte("cp")},
	}
	for _, m := range msgs {
		e := wire.GetEncoder()
		if err := wire.EncodeFrame(e, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := wire.DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\ngot  %#v\nwant %#v", m, got, m)
		}
		wire.PutEncoder(e)
	}
}

// TestVoteWireAllocsFree is an acceptance gate: steady-state encode and
// decode (into a recycled value) of pbft prepare/commit votes must not
// allocate.
func TestVoteWireAllocsFree(t *testing.T) {
	v := vote{View: 3, Seq: 41, Digest: types.HashBytes([]byte("d")), Sig: []byte("signature")}
	e := wire.GetEncoder()
	defer wire.PutEncoder(e)
	voteCodec.EncodeFrame(e, &v) // warm the buffer
	allocs := testing.AllocsPerRun(200, func() {
		e.Reset()
		voteCodec.EncodeFrame(e, &v)
	})
	if allocs != 0 {
		t.Fatalf("steady-state vote encode allocates %.1f/op, want 0", allocs)
	}
	frame := append([]byte(nil), e.Frame()...)
	var scratch vote
	if err := voteCodec.DecodeFrameInto(frame, &scratch); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := voteCodec.DecodeFrameInto(frame, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state vote decode allocates %.1f/op, want 0", allocs)
	}
	if scratch.View != v.View || scratch.Seq != v.Seq || scratch.Digest != v.Digest || string(scratch.Sig) != string(v.Sig) {
		t.Fatalf("decoded vote diverged: %#v", scratch)
	}
}
