// Package pbft implements Practical Byzantine Fault Tolerance (Castro &
// Liskov, OSDI'99), the canonical ordering protocol of permissioned
// blockchains (§2.2, §2.3.3). n = 3f+1 replicas run the three normal-case
// phases — pre-prepare, prepare, commit, each quorum 2f+1 — and a view
// change that replaces a faulty primary while preserving every decision
// that may have committed anywhere.
//
// Each replica is a single event-loop goroutine; all protocol state is
// confined to that goroutine, so there are no locks in the hot path.
package pbft

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

// Message type tags on the wire.
const (
	msgRequest    = "pbft/request"
	msgPrePrepare = "pbft/preprepare"
	msgPrepare    = "pbft/prepare"
	msgCommit     = "pbft/commit"
	msgViewChange = "pbft/viewchange"
	msgNewView    = "pbft/newview"
	msgFetch      = "pbft/fetch"
	msgFetchReply = "pbft/fetchreply"
	msgCheckpoint = "pbft/checkpoint"
	msgStatus     = "pbft/status"

	// Aggregate-vote mode (consensus.Config.AggregateVotes): replicas send
	// Schnorr signature shares to the primary instead of multicasting
	// prepare/commit votes, and the primary relays one constant-size
	// certificate per phase — ~5n messages per slot instead of ~2n².
	msgPrepPartial = "pbft/preppartial"
	msgCommPartial = "pbft/commitpartial"
	msgPrepCert    = "pbft/prepcert"
	msgCommCert    = "pbft/commitcert"
)

// checkpointEvery is how many executed slots between checkpoints; a
// quorum of matching checkpoints makes a sequence number stable and lets
// replicas garbage-collect everything at or below it.
const checkpointEvery = 128

// healthyViewExecs is how many slots a view must execute before the
// view-change timeout ladder decays one step: enough that churn-zone
// views (which execute at most a handful of slots before timing out)
// never shorten their deadline, small enough that one productive view
// walks the timeout back toward the configured base.
const healthyViewExecs = checkpointEvery / 2

type request struct {
	Digest types.Hash
	Value  any
}

type prePrepare struct {
	View   uint64
	Seq    uint64
	Digest types.Hash
	Value  any
	Sig    []byte
}

type vote struct { // prepare or commit
	View   uint64
	Seq    uint64
	Digest types.Hash
	Sig    []byte
}

// partialMsg carries one replica's Schnorr signature share on a phase
// statement to the primary (aggregate mode). The share itself authenticates
// the message: a garbled or transplanted partial fails aggregator
// verification.
type partialMsg struct {
	View   uint64
	Seq    uint64
	Digest types.Hash
	Part   quorumcert.Partial
}

// certMsg is the primary's broadcast of an aggregated phase certificate.
// It carries no value: a replica that missed the pre-prepare adopts the
// digest and recovers the value over the existing fetch path.
type certMsg struct {
	View   uint64
	Seq    uint64
	Digest types.Hash
	Cert   quorumcert.QuorumCert
}

// preparedCert certifies that a (seq, digest, value) gathered a prepare
// quorum in some view and must survive into the next one.
type preparedCert struct {
	Seq    uint64
	Digest types.Hash
	Value  any
}

type viewChange struct {
	NewView  uint64
	Prepared []preparedCert
	Sig      []byte
}

type newView struct {
	NewView uint64
	Certs   []preparedCert
	MaxSeq  uint64
	Sig     []byte
}

// fetch asks peers for the value of a slot the requester learned is
// committed (via a commit quorum) but whose pre-prepare it missed.
type fetch struct {
	Seq uint64
}

type fetchReply struct {
	Seq    uint64
	Digest types.Hash
	Value  any
}

// status is low-rate gossip of execution progress: a replica that was
// partitioned away (and so missed both requests and commits) learns it is
// behind and starts fetching. Without it, a fully-isolated replica would
// sleep forever after the partition heals.
type status struct {
	LastExec uint64
	Sig      []byte
}

// checkpoint announces that the sender executed through Seq with the
// given cumulative history digest; 2f+1 matching checkpoints prove the
// prefix is globally decided and reclaimable.
type checkpoint struct {
	Seq  uint64
	Hist types.Hash
	Sig  []byte
}

// slot is the per-sequence-number state. Counted-mode prepare/commit votes
// go through QuorumTracker keyed by view, which pins each voter to its
// first digest per view — an equivocating replica cannot count toward two
// conflicting quorums at the same (view, seq).
type slot struct {
	digest     types.Hash
	value      any
	hasPP      bool
	ppView     uint64
	prepares   *consensus.QuorumTracker
	commits    *consensus.QuorumTracker
	sentCommit bool
	committed  bool
	executed   bool

	// Aggregate-vote mode state. prepAgg/commAgg collect shares on the
	// primary; sentPrepCert/sentCommCert make each cert broadcast one-shot;
	// prepared marks a verified prepare certificate on a replica (it feeds
	// the view-change prepared-certificate collection, exactly like a
	// counted prepare quorum).
	prepAgg      *quorumcert.Aggregator
	commAgg      *quorumcert.Aggregator
	sentPrepCert bool
	sentCommCert bool
	prepared     bool
}

func newSlot() *slot {
	return &slot{
		prepares: consensus.NewQuorumTracker(),
		commits:  consensus.NewQuorumTracker(),
	}
}

// viewKey keys QuorumTracker state by view; the tracker separates digests
// itself (and rejects per-voter equivocation across them).
func viewKey(view uint64) string { return strconv.FormatUint(view, 10) }

// resetAggPhase clears per-view aggregate-vote state when a slot is re-run
// in a new view; the statement's view changes, so stale shares and
// certificates cannot satisfy the new view's phases.
func (s *slot) resetAggPhase() {
	s.prepAgg, s.commAgg = nil, nil
	s.sentPrepCert, s.sentCommCert = false, false
	s.prepared = false
}

// Replica is one PBFT node.
type Replica struct {
	cfg consensus.Config
	ep  *network.Endpoint

	decCh    chan consensus.Decision
	submitCh chan request
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// slotGauge mirrors len(slots) after every event so tests and
	// monitoring can watch retention (checkpoint GC) on a live replica
	// without racing the event loop.
	slotGauge atomic.Int64

	// Everything below is owned by the event loop.
	view         uint64
	inViewChange bool
	nextSeq      uint64 // primary only: next sequence to assign
	lastExec     uint64
	slots        map[uint64]*slot
	proposed     map[types.Hash]bool // primary: digests already assigned a seq
	pending      map[types.Hash]any  // known outstanding requests, not yet executed
	vcVotes      map[uint64]map[types.NodeID]*viewChange
	lastVC       *viewChange                            // our current view-change vote, for retransmission
	vcResent     bool                                   // whether lastVC was already retransmitted this view
	executedDig  map[types.Hash]uint64                  // digest → slot it executed at
	fetchVotes   map[uint64]map[types.NodeID]fetchReply // gap-recovery replies
	fetchTried   bool                                   // alternate gap-fetch with view change
	histDigest   types.Hash                             // cumulative digest of executed history
	ckptVotes    map[uint64]map[types.NodeID]types.Hash // checkpoint votes
	knownExec    uint64                                 // highest peer execution point from status gossip
	stableSeq    uint64                                 // highest quorum-stable checkpoint
	lastNV       uint64                                 // view of the last accepted NewView
	storedNV     *newView                               // for retransmission to stragglers
	vcBackoff    uint                                   // timeout-doubling ladder; decays as views prove healthy
	execsInView  uint64                                 // executions since the last backoff decay; gates the decay
	timer        *consensus.LoopTimer

	// Aggregate-vote mode (cfg.AggregateVotes): voteKeys is the cluster's
	// Schnorr key set (nil under DisableSig — certificates degrade to
	// counted bitmaps); batcher (cfg.BatchVotes) coalesces outbound votes
	// and shares per destination.
	aggMode  bool
	voteKeys *quorumcert.Keys
	batcher  *network.VoteBatcher
}

// New creates a PBFT replica. Call Start to launch it.
func New(cfg consensus.Config) *Replica {
	cfg = cfg.Defaulted()
	r := &Replica{
		cfg:         cfg,
		ep:          cfg.Net.Join(cfg.Self),
		decCh:       make(chan consensus.Decision, 65536),
		submitCh:    make(chan request, 65536),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
		nextSeq:     1,
		slots:       map[uint64]*slot{},
		proposed:    map[types.Hash]bool{},
		pending:     map[types.Hash]any{},
		vcVotes:     map[uint64]map[types.NodeID]*viewChange{},
		executedDig: map[types.Hash]uint64{},
		fetchVotes:  map[uint64]map[types.NodeID]fetchReply{},
		ckptVotes:   map[uint64]map[types.NodeID]types.Hash{},
		timer:       consensus.NewLoopTimer(),
	}
	if cfg.AggregateVotes {
		r.aggMode = true
		r.voteKeys = cfg.VoteKeySet()
	}
	if cfg.BatchVotes {
		r.batcher = network.NewVoteBatcher(r.ep, network.VoteBatcherConfig{Obs: cfg.Obs})
	}
	return r
}

// prepStatement / commStatement are what aggregate-mode shares sign: the
// phase domain plus the (view, seq, digest) coordinates.
func prepStatement(view, seq uint64, d types.Hash) quorumcert.Statement {
	return quorumcert.Statement{Domain: msgPrepare, View: view, Seq: seq, Digest: d}
}

func commStatement(view, seq uint64, d types.Hash) quorumcert.Statement {
	return quorumcert.Statement{Domain: msgCommit, View: view, Seq: seq, Digest: d}
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.NodeID { return r.cfg.Self }

// Decisions implements consensus.Replica.
func (r *Replica) Decisions() <-chan consensus.Decision { return r.decCh }

// Start implements consensus.Replica.
func (r *Replica) Start() { go r.loop() }

// Stop implements consensus.Replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
}

// Submit implements consensus.Replica.
func (r *Replica) Submit(value any, digest types.Hash) {
	r.cfg.Obs.Mark(digest, 0, obs.PhaseSubmit)
	select {
	case r.submitCh <- request{Digest: digest, Value: value}:
	case <-r.stopCh:
	}
}

func (r *Replica) primary(view uint64) types.NodeID {
	return r.cfg.Nodes[int(view%uint64(len(r.cfg.Nodes)))]
}

func (r *Replica) isPrimary() bool { return r.primary(r.view) == r.cfg.Self }

func (r *Replica) loop() {
	defer close(r.done)
	defer r.timer.Stop()
	if r.batcher != nil {
		defer r.batcher.Stop()
	}
	defer func() { r.slotGauge.Store(int64(len(r.slots))) }()
	gossip := time.NewTicker(r.cfg.Timeout * 4)
	defer gossip.Stop()
	for {
		r.slotGauge.Store(int64(len(r.slots)))
		select {
		case <-r.stopCh:
			return
		case req := <-r.submitCh:
			r.onSubmit(req)
		case m := <-r.ep.Inbox():
			r.onMessage(m)
		case <-r.timer.C():
			r.onTimeout()
		case <-gossip.C:
			if r.lastExec > 0 {
				st := status{
					LastExec: r.lastExec,
					Sig:      r.cfg.SignPart([]byte(msgStatus), consensus.U64(r.lastExec)),
				}
				r.ep.Multicast(r.cfg.Nodes, msgStatus, st)
			}
		}
	}
}

func (r *Replica) onSubmit(req request) {
	// Requests are broadcast so every correct replica learns of the
	// outstanding work and arms its failure-detection timer — otherwise a
	// dead primary would only ever be suspected by the submitting
	// replica, and a view-change quorum could never form.
	r.ep.Multicast(r.cfg.Nodes, msgRequest, req)
	r.onRequest(req)
}

// onRequest registers an outstanding request and, on the primary,
// proposes it.
func (r *Replica) onRequest(req request) {
	if r.isExecuted(req.Digest) {
		return
	}
	r.pending[req.Digest] = req.Value
	// Start the failure-detection timer only if it is not already running
	// (Castro & Liskov: a backup starts its timer when a request arrives
	// and the timer is not running; only execution progress restarts it).
	// A full Reset here would let a steady client stream push the deadline
	// out forever — under continuous load no replica would ever suspect a
	// faulty primary and view changes would starve.
	r.ensureTimer()
	if r.isPrimary() && !r.inViewChange {
		r.propose(req.Digest, req.Value)
	}
}

// isExecuted reports whether a request digest already executed, bounding
// re-broadcast loops after view changes.
func (r *Replica) isExecuted(d types.Hash) bool {
	_, ok := r.executedDig[d]
	return ok
}

// onCheckpoint collects checkpoint votes; a 2f+1 matching quorum at or
// below our own execution point makes that prefix stable and
// garbage-collectable. Slots within one checkpoint window above the
// stable point are retained so laggards can still fetch them.
func (r *Replica) onCheckpoint(from types.NodeID, ck checkpoint) {
	m, ok := r.ckptVotes[ck.Seq]
	if !ok {
		m = map[types.NodeID]types.Hash{}
		r.ckptVotes[ck.Seq] = m
	}
	m[from] = ck.Hist
	// Count the strongest quorum across all recorded histories, not just
	// the arriving vote's. A replica whose own history bookkeeping drifted
	// (diverging null-slot/re-proposal layouts across view changes) would
	// otherwise sit on a full 2f+1 peer quorum forever: its own boundary
	// vote — the last arrival while it lags — only ever counts itself.
	best := ck.Hist
	count := 0
	for _, h := range m {
		c := 0
		for _, h2 := range m {
			if h2 == h {
				c++
			}
		}
		if c > count {
			best, count = h, c
		}
	}
	if count < r.cfg.ByzQuorum() || ck.Seq <= r.stableSeq || ck.Seq > r.lastExec {
		return
	}
	r.cfg.Obs.Logger("pbft").Debug("checkpoint stable",
		"node", int(r.cfg.Self), "seq", ck.Seq, "last_exec", r.lastExec)
	// Adopt the quorum's history when stabilizing exactly at our own
	// execution point: 2f+1 replicas proved this prefix digest, so a
	// drifted local mirror is the wrong one, and keeping it would poison
	// every later checkpoint vote we cast (textbook PBFT replaces local
	// state with the stable checkpoint's for the same reason).
	if ck.Seq == r.lastExec && r.histDigest != best {
		r.cfg.Obs.Logger("pbft").Warn("checkpoint history drift healed",
			"node", int(r.cfg.Self), "seq", ck.Seq,
			"local", r.histDigest.Hex()[:12], "quorum", best.Hex()[:12])
		r.histDigest = best
	}
	r.stableSeq = ck.Seq
	// Reclaim everything more than one window below the stable point;
	// the retained window keeps gap-fetch working for modest laggards.
	// (Textbook PBFT transfers full state snapshots instead; see
	// DESIGN.md, Documented simplifications.)
	low := int64(r.stableSeq) - checkpointEvery
	for seq := range r.slots {
		if int64(seq) <= low {
			delete(r.slots, seq)
		}
	}
	for seq := range r.ckptVotes {
		if int64(seq) <= low {
			delete(r.ckptVotes, seq)
		}
	}
	for seq := range r.fetchVotes {
		if int64(seq) <= low {
			delete(r.fetchVotes, seq)
		}
	}
	for v := range r.vcVotes {
		if v+1 < r.view { // stale view-change bookkeeping
			delete(r.vcVotes, v)
		}
	}
}

// SlotCount reports retained protocol slots — a memory metric for tests
// and monitoring. It reads an atomically published mirror, so it is safe
// to call while the replica is running; the value trails the event loop
// by at most one event.
func (r *Replica) SlotCount() int { return int(r.slotGauge.Load()) }

// gapFetch asks peers for the decision of the first unexecuted slot when
// higher slots are already committed locally — proof the gap slot was
// decided globally. Returns whether a fetch was sent.
func (r *Replica) gapFetch() bool {
	gap := r.lastExec + 1
	if s, ok := r.slots[gap]; ok && s.committed {
		if s.hasPP {
			// Value present; execution just hasn't been driven yet.
			r.executeReady()
			return false
		}
		// Committed by quorum but the value is still missing. onCommit
		// sent a one-shot fetch, but peers answer only for slots they
		// have committed themselves — if that fetch raced ahead of them
		// it fell on deaf ears, and without a retry the replica wedges
		// here forever while the rest of the cluster moves on (and
		// eventually garbage-collects the slot past recovery). Re-ask on
		// every timeout until someone can vouch for the value.
		r.cfg.Obs.Inc("pbft/fetches")
		r.ep.Multicast(r.cfg.Nodes, msgFetch, fetch{Seq: gap})
		return true
	}
	// Strong evidence: a higher slot committed locally, so the gap is
	// decided somewhere. But even without it, asking costs n messages
	// and recovers a replica whose commit traffic was entirely lost —
	// peers only answer for slots they actually executed, and adoption
	// needs f+1 matching answers, so a speculative ask is safe. A peer
	// execution point above the gap (from status gossip) is evidence too:
	// it is what keeps catch-up chaining slot after slot on a restarted
	// replica that has no local work at all.
	if gap > r.knownExec && !r.hasWorkAbove(gap) && len(r.pending) == 0 {
		return false
	}
	r.cfg.Obs.Inc("pbft/fetches")
	r.ep.Multicast(r.cfg.Nodes, msgFetch, fetch{Seq: gap})
	return true
}

// hasWorkAbove reports whether any slot above gap is committed/executed.
func (r *Replica) hasWorkAbove(gap uint64) bool {
	for seq, s := range r.slots {
		if seq > gap && (s.committed || s.executed) {
			return true
		}
	}
	return false
}

// onFetchReply fills in a slot we missed. Two cases: the slot is
// commit-quorum-backed locally and only the value is missing (reply
// digest must match the quorum digest); or we are gap-recovering and
// accept a digest confirmed by f+1 distinct peers (at most f lie).
func (r *Replica) onFetchReply(from types.NodeID, fr fetchReply) {
	s := r.slot(fr.Seq)
	if s.executed {
		return
	}
	if s.committed {
		if s.hasPP || s.digest != fr.Digest {
			return
		}
		s.hasPP = true
		s.value = fr.Value
		r.executeReady()
		return
	}
	// Gap recovery: require f+1 matching digests.
	m, ok := r.fetchVotes[fr.Seq]
	if !ok {
		m = map[types.NodeID]fetchReply{}
		r.fetchVotes[fr.Seq] = m
	}
	m[from] = fr
	count := 0
	for _, v := range m {
		if v.Digest == fr.Digest {
			count++
		}
	}
	if count < r.cfg.MaxByzFaults()+1 {
		return
	}
	s.digest = fr.Digest
	s.value = fr.Value
	s.hasPP = true
	s.committed = true
	delete(r.fetchVotes, fr.Seq)
	before := r.lastExec
	r.executeReady()
	// Catching up: chain straight to the next gap rather than waiting a
	// full timeout per slot.
	if r.lastExec > before {
		r.gapFetch()
	}
}

// propose assigns the next sequence number and broadcasts a pre-prepare.
func (r *Replica) propose(digest types.Hash, value any) {
	if r.proposed[digest] {
		return
	}
	r.proposed[digest] = true
	seq := r.nextSeq
	r.nextSeq++
	pp := prePrepare{
		View: r.view, Seq: seq, Digest: digest, Value: value,
		Sig: r.cfg.SignPart([]byte(msgPrePrepare), consensus.U64(r.view), consensus.U64(seq), digest[:]),
	}
	r.ep.Multicast(r.cfg.Nodes, msgPrePrepare, pp)
	r.acceptPrePrepare(r.cfg.Self, pp)
}

func (r *Replica) onMessage(m network.Message) {
	if !r.cfg.IsMember(m.From) {
		return // not part of this replica group
	}
	switch m.Type {
	case network.MsgVoteBatch:
		for _, inner := range network.Unbatch(m) {
			r.onMessage(inner)
		}
	case msgRequest:
		req, ok := m.Payload.(request)
		if !ok {
			return
		}
		r.onRequest(req)
	case msgPrepPartial:
		pm, ok := m.Payload.(partialMsg)
		if !ok {
			return
		}
		r.onPrepPartial(m.From, pm)
	case msgCommPartial:
		pm, ok := m.Payload.(partialMsg)
		if !ok {
			return
		}
		r.onCommPartial(m.From, pm)
	case msgPrepCert:
		cm, ok := m.Payload.(certMsg)
		if !ok {
			return
		}
		r.onPrepCert(m.From, cm)
	case msgCommCert:
		cm, ok := m.Payload.(certMsg)
		if !ok {
			return
		}
		r.onCommCert(m.From, cm)
	case msgPrePrepare:
		pp, ok := m.Payload.(prePrepare)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, pp.Sig, []byte(msgPrePrepare), consensus.U64(pp.View), consensus.U64(pp.Seq), pp.Digest[:]) {
			return
		}
		r.acceptPrePrepare(m.From, pp)
	case msgPrepare:
		v, ok := m.Payload.(vote)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, v.Sig, []byte(msgPrepare), consensus.U64(v.View), consensus.U64(v.Seq), v.Digest[:]) {
			return
		}
		r.onPrepare(m.From, v)
	case msgCommit:
		v, ok := m.Payload.(vote)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, v.Sig, []byte(msgCommit), consensus.U64(v.View), consensus.U64(v.Seq), v.Digest[:]) {
			return
		}
		r.onCommit(m.From, v)
	case msgViewChange:
		vc, ok := m.Payload.(viewChange)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, vc.Sig, []byte(msgViewChange), consensus.U64(vc.NewView)) {
			return
		}
		r.onViewChange(m.From, &vc)
	case msgNewView:
		nv, ok := m.Payload.(newView)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, nv.Sig, []byte(msgNewView), consensus.U64(nv.NewView)) {
			return
		}
		r.onNewView(m.From, nv)
	case msgFetch:
		f, ok := m.Payload.(fetch)
		if !ok {
			return
		}
		if s, ok := r.slots[f.Seq]; ok && s.hasPP && s.committed {
			// Null-filled slots are legitimate answers too: the requester
			// needs to know the slot decided "nothing".
			r.ep.Send(m.From, msgFetchReply, fetchReply{Seq: f.Seq, Digest: s.digest, Value: s.value})
		}
	case msgFetchReply:
		fr, ok := m.Payload.(fetchReply)
		if !ok {
			return
		}
		r.onFetchReply(m.From, fr)
	case msgCheckpoint:
		ck, ok := m.Payload.(checkpoint)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, ck.Sig, []byte(msgCheckpoint), consensus.U64(ck.Seq), ck.Hist[:]) {
			return
		}
		r.onCheckpoint(m.From, ck)
	case msgStatus:
		st, ok := m.Payload.(status)
		if !ok {
			return
		}
		if !r.cfg.VerifyPart(m.From, st.Sig, []byte(msgStatus), consensus.U64(st.LastExec)) {
			return
		}
		// Remember the furthest execution point any peer claims; gapFetch
		// uses it to keep chaining fetches during crash recovery. A lying
		// peer can only cause wasted fetches — adoption still needs f+1
		// matching replies.
		if st.LastExec > r.knownExec {
			r.knownExec = st.LastExec
		}
		// A peer is ahead: fetch the first slot we are missing. Adoption
		// still requires f+1 agreeing replies, so a single lying peer
		// costs only a wasted fetch.
		if st.LastExec > r.lastExec {
			r.cfg.Obs.Inc("pbft/fetches")
			r.ep.Multicast(r.cfg.Nodes, msgFetch, fetch{Seq: r.lastExec + 1})
		}
	}
}

func (r *Replica) slot(seq uint64) *slot {
	s, ok := r.slots[seq]
	if !ok {
		s = newSlot()
		r.slots[seq] = s
	}
	return s
}

func (r *Replica) acceptPrePrepare(from types.NodeID, pp prePrepare) {
	if r.inViewChange || pp.View != r.view || from != r.primary(pp.View) {
		return
	}
	s := r.slot(pp.Seq)
	if s.hasPP && s.ppView == pp.View && s.digest != pp.Digest {
		return // equivocation: first pre-prepare wins for this view
	}
	if s.executed {
		return
	}
	s.hasPP = true
	s.ppView = pp.View
	s.digest = pp.Digest
	s.value = pp.Value
	r.cfg.Obs.Mark(pp.Digest, pp.Seq, obs.PhasePropose)
	// Accepting a pre-prepare is work arrival, not execution progress: a
	// live primary streaming proposals must not keep resetting the timer
	// while execution is wedged behind an earlier un-prepared slot.
	r.ensureTimer()

	if r.aggMode {
		r.sendPartial(msgPrepPartial, pp.View, pp.Seq, pp.Digest)
		return
	}
	p := vote{
		View: pp.View, Seq: pp.Seq, Digest: pp.Digest,
		Sig: r.cfg.SignPart([]byte(msgPrepare), consensus.U64(pp.View), consensus.U64(pp.Seq), pp.Digest[:]),
	}
	r.castVote(msgPrepare, p)
	r.onPrepare(r.cfg.Self, p)
}

// castVote multicasts a counted-mode vote, through the batcher when vote
// batching is enabled.
func (r *Replica) castVote(typ string, v vote) {
	if r.batcher != nil {
		r.batcher.Multicast(r.cfg.Nodes, typ, v)
		return
	}
	r.ep.Multicast(r.cfg.Nodes, typ, v)
}

// sendPartial signs the phase statement and routes the share to the
// current primary (directly on the primary itself, batched when enabled).
func (r *Replica) sendPartial(typ string, view, seq uint64, d types.Hash) {
	st := prepStatement(view, seq, d)
	if typ == msgCommPartial {
		st = commStatement(view, seq, d)
	}
	pm := partialMsg{View: view, Seq: seq, Digest: d, Part: r.voteKeys.Sign(r.cfg.Self, st)}
	primary := r.primary(view)
	switch {
	case primary == r.cfg.Self && typ == msgPrepPartial:
		r.onPrepPartial(r.cfg.Self, pm)
	case primary == r.cfg.Self:
		r.onCommPartial(r.cfg.Self, pm)
	case r.batcher != nil:
		r.batcher.Enqueue(primary, typ, pm)
	default:
		r.ep.Send(primary, typ, pm)
	}
}

// onPrepPartial runs on the primary: it folds prepare shares for a slot it
// pre-prepared and, at exactly the quorum threshold, broadcasts the
// prepare certificate.
func (r *Replica) onPrepPartial(from types.NodeID, pm partialMsg) {
	if !r.aggMode || pm.Part.Signer != from {
		return
	}
	if r.inViewChange || pm.View != r.view || !r.isPrimary() {
		return
	}
	s := r.slot(pm.Seq)
	if s.executed || s.sentPrepCert || !s.hasPP || s.ppView != pm.View || s.digest != pm.Digest {
		return
	}
	st := prepStatement(pm.View, pm.Seq, pm.Digest)
	if s.prepAgg == nil || s.prepAgg.Statement() != st {
		s.prepAgg = quorumcert.NewAggregator(r.voteKeys, r.cfg.Nodes, r.cfg.ByzQuorum(), st)
	}
	n, err := s.prepAgg.Add(pm.Part)
	if err != nil {
		r.cfg.Obs.Inc("quorumcert/partials_rejected")
		return
	}
	r.cfg.Obs.Inc("quorumcert/partials")
	if n != r.cfg.ByzQuorum() {
		return
	}
	cert, err := s.prepAgg.Cert()
	if err != nil {
		return
	}
	s.sentPrepCert = true
	r.cfg.Obs.Inc("quorumcert/certs_built")
	cm := certMsg{View: pm.View, Seq: pm.Seq, Digest: pm.Digest, Cert: *cert}
	r.ep.Multicast(r.cfg.Nodes, msgPrepCert, cm)
	r.onPrepCert(r.cfg.Self, cm)
}

// onPrepCert marks a slot prepared once the primary's aggregate prepare
// certificate verifies, then contributes a commit share. The prepared flag
// is this mode's equivalent of a counted prepare quorum: startViewChange
// folds such slots into the prepared certificates the next view preserves.
func (r *Replica) onPrepCert(from types.NodeID, cm certMsg) {
	if !r.aggMode || from != r.primary(cm.View) {
		return
	}
	if r.inViewChange || cm.View != r.view {
		return
	}
	s := r.slot(cm.Seq)
	if s.executed || s.prepared {
		return
	}
	// The prepare phase is view-local and needs the pre-prepared value: a
	// replica that missed the pre-prepare stays silent here and recovers
	// through the commit certificate + fetch path instead.
	if !s.hasPP || s.ppView != cm.View || s.digest != cm.Digest {
		return
	}
	if cm.Cert.Statement != prepStatement(cm.View, cm.Seq, cm.Digest) {
		return
	}
	if err := cm.Cert.Verify(r.voteKeys, r.cfg.Nodes, r.cfg.ByzQuorum()); err != nil {
		r.cfg.Obs.Inc("quorumcert/cert_verify_failures")
		return
	}
	r.cfg.Obs.Inc("quorumcert/certs_verified")
	s.prepared = true
	r.cfg.Obs.Mark(cm.Digest, cm.Seq, obs.PhasePrepare)
	r.sendPartial(msgCommPartial, cm.View, cm.Seq, cm.Digest)
}

// onCommPartial runs on the primary: commit shares fold into the commit
// certificate, whose broadcast decides the slot on every replica.
func (r *Replica) onCommPartial(from types.NodeID, pm partialMsg) {
	if !r.aggMode || pm.Part.Signer != from {
		return
	}
	if r.inViewChange || pm.View != r.view || !r.isPrimary() {
		return
	}
	s := r.slot(pm.Seq)
	if s.executed || s.sentCommCert || !s.hasPP || s.ppView != pm.View || s.digest != pm.Digest {
		return
	}
	st := commStatement(pm.View, pm.Seq, pm.Digest)
	if s.commAgg == nil || s.commAgg.Statement() != st {
		s.commAgg = quorumcert.NewAggregator(r.voteKeys, r.cfg.Nodes, r.cfg.ByzQuorum(), st)
	}
	n, err := s.commAgg.Add(pm.Part)
	if err != nil {
		r.cfg.Obs.Inc("quorumcert/partials_rejected")
		return
	}
	r.cfg.Obs.Inc("quorumcert/partials")
	if n != r.cfg.ByzQuorum() {
		return
	}
	cert, err := s.commAgg.Cert()
	if err != nil {
		return
	}
	s.sentCommCert = true
	r.cfg.Obs.Inc("quorumcert/certs_built")
	cm := certMsg{View: pm.View, Seq: pm.Seq, Digest: pm.Digest, Cert: *cert}
	r.ep.Multicast(r.cfg.Nodes, msgCommCert, cm)
	r.onCommCert(r.cfg.Self, cm)
}

// onCommCert finalizes a slot from the aggregate commit certificate. Like
// counted commit quorums, it is accepted regardless of the local view —
// the certificate proves the slot decided globally, which is the laggard
// recovery path; only provenance (the certificate view's primary) and the
// certificate itself are checked.
func (r *Replica) onCommCert(from types.NodeID, cm certMsg) {
	if !r.aggMode || from != r.primary(cm.View) {
		return
	}
	s := r.slot(cm.Seq)
	if s.executed || s.committed {
		return
	}
	if cm.Cert.Statement != commStatement(cm.View, cm.Seq, cm.Digest) {
		return
	}
	if err := cm.Cert.Verify(r.voteKeys, r.cfg.Nodes, r.cfg.ByzQuorum()); err != nil {
		r.cfg.Obs.Inc("quorumcert/cert_verify_failures")
		return
	}
	r.cfg.Obs.Inc("quorumcert/certs_verified")
	s.committed = true
	r.cfg.Obs.MarkLatency("pbft/commit_latency", cm.Digest, cm.Seq, obs.PhasePropose, obs.PhaseCommit)
	if !s.hasPP || s.digest != cm.Digest {
		// The certificate proves the digest; the value is still missing.
		// Adopt the digest and recover the value over the fetch path.
		s.digest = cm.Digest
		s.hasPP = false
		s.value = nil
		r.cfg.Obs.Inc("pbft/fetches")
		r.ep.Multicast(r.cfg.Nodes, msgFetch, fetch{Seq: cm.Seq})
		return
	}
	r.executeReady()
}

func (r *Replica) onPrepare(from types.NodeID, v vote) {
	if v.View != r.view || r.inViewChange {
		return
	}
	s := r.slot(v.Seq)
	n := s.prepares.Add(viewKey(v.View), from, v.Digest)
	if !s.hasPP || s.ppView != v.View || s.digest != v.Digest {
		return
	}
	if n >= r.cfg.ByzQuorum() && !s.sentCommit {
		s.sentCommit = true
		r.cfg.Obs.Mark(v.Digest, v.Seq, obs.PhasePrepare)
		c := vote{
			View: v.View, Seq: v.Seq, Digest: v.Digest,
			Sig: r.cfg.SignPart([]byte(msgCommit), consensus.U64(v.View), consensus.U64(v.Seq), v.Digest[:]),
		}
		r.castVote(msgCommit, c)
		r.onCommit(r.cfg.Self, c)
	}
}

func (r *Replica) onCommit(from types.NodeID, v vote) {
	// Commit votes are counted regardless of the local view: 2f+1
	// matching commits for (view, seq, digest) prove the slot is decided
	// globally, so a replica that drifted into a different view can still
	// finalize — the laggard-recovery path.
	s := r.slot(v.Seq)
	if s.executed || s.committed {
		return
	}
	n := s.commits.Add(viewKey(v.View), from, v.Digest)
	if n < r.cfg.ByzQuorum() {
		return
	}
	s.committed = true
	r.cfg.Obs.MarkLatency("pbft/commit_latency", v.Digest, v.Seq, obs.PhasePropose, obs.PhaseCommit)
	if !s.hasPP || s.digest != v.Digest {
		// Quorum proves the digest, but we missed the pre-prepare and
		// have no value: adopt the digest and fetch the value.
		s.digest = v.Digest
		s.hasPP = false
		s.value = nil
		r.cfg.Obs.Inc("pbft/fetches")
		r.ep.Multicast(r.cfg.Nodes, msgFetch, fetch{Seq: v.Seq})
		return
	}
	r.executeReady()
}

// executeReady delivers committed slots in sequence order.
func (r *Replica) executeReady() {
	executed := false
	for {
		s, ok := r.slots[r.lastExec+1]
		if !ok || !s.committed || s.executed {
			break
		}
		executed = true
		if !s.hasPP && !s.digest.IsZero() {
			break // committed by quorum but value still in flight (fetch)
		}
		s.executed = true
		r.lastExec++
		r.execsInView++
		delete(r.pending, s.digest)
		delete(r.fetchVotes, r.lastExec)
		r.histDigest = types.HashConcat(r.histDigest[:], s.digest[:])
		if r.lastExec%checkpointEvery == 0 {
			ck := checkpoint{
				Seq: r.lastExec, Hist: r.histDigest,
				Sig: r.cfg.SignPart([]byte(msgCheckpoint), consensus.U64(r.lastExec), r.histDigest[:]),
			}
			r.ep.Multicast(r.cfg.Nodes, msgCheckpoint, ck)
			r.onCheckpoint(r.cfg.Self, ck)
		}
		if !s.digest.IsZero() { // null slots fill view-change gaps silently
			// A view change can re-propose a request that already executed
			// at an earlier slot on some replicas; every replica executes
			// each digest exactly once, at its first slot.
			if _, dup := r.executedDig[s.digest]; !dup {
				r.executedDig[s.digest] = r.lastExec
				r.cfg.Obs.Mark(s.digest, r.lastExec, obs.PhaseApply)
				r.cfg.Obs.Inc("pbft/decisions")
				r.decCh <- consensus.Decision{Seq: r.lastExec, Digest: s.digest, Value: s.value, Node: r.cfg.Self}
			}
		}
	}
	// Only actual execution progress restarts the failure-detection
	// deadline. executeReady also runs on every commit-quorum event with
	// the gap slot still blocking — a stream of commits on later slots
	// must not keep pushing the deadline out while lastExec is stuck.
	//
	// The backoff ladder decays one step per healthyViewExecs executed
	// slots rather than resetting on any progress: a view that drains a
	// large batch has proven its primary live and can afford a shorter
	// deadline, while churn-zone views (a handful of executions before
	// the next timeout) never decay, which is what prevents a deep
	// backlog from livelocking in 150ms view changes. A full drain
	// clears the ladder outright.
	for r.execsInView >= healthyViewExecs {
		r.execsInView -= healthyViewExecs
		if r.vcBackoff > 0 {
			r.vcBackoff--
		}
	}
	if executed {
		if !r.outstanding() {
			r.vcBackoff = 0
		}
		r.armTimer()
	} else {
		r.ensureTimer()
	}
}

// outstanding reports whether work is queued that has not yet executed —
// pending requests or accepted-but-unexecuted slots.
func (r *Replica) outstanding() bool {
	if len(r.pending) > 0 {
		return true
	}
	for seq, s := range r.slots {
		if seq > r.lastExec && s.hasPP && !s.executed {
			return true
		}
	}
	return false
}

// viewTimeout is the current failure-detection timeout: the configured
// base, doubled for every consecutive view change that produced no
// execution progress (Castro & Liskov §4.5.2). Without the backoff a
// large backlog livelocks: no 150ms view lives long enough to re-propose
// and prepare a slot, so the cluster burns forever in view changes. The
// shift is capped so a long outage cannot push recovery out indefinitely.
func (r *Replica) viewTimeout() time.Duration {
	shift := r.vcBackoff
	if shift > 5 {
		shift = 5
	}
	return r.cfg.Timeout << shift
}

// armTimer restarts the failure-detection timer when there is outstanding
// work and stops it when fully caught up. Used on progress paths
// (execution advanced, new view entered).
func (r *Replica) armTimer() {
	if r.outstanding() {
		r.timer.Reset(r.viewTimeout())
	} else {
		r.timer.Stop()
	}
}

// ensureTimer is armTimer without the deadline push-out: it arms the
// timer only when it is not already running. Used on work-arrival paths
// (request received, pre-prepare accepted) so a steady stream of arrivals
// cannot postpone failure detection forever.
func (r *Replica) ensureTimer() {
	if r.outstanding() {
		r.timer.Ensure(r.viewTimeout())
	} else {
		r.timer.Stop()
	}
}

func (r *Replica) onTimeout() {
	// State transfer beats view change when the system has visibly moved
	// on without us: if a slot above our execution gap is already
	// committed, the gap was decided somewhere — fetch it instead of
	// dragging everyone through another view.
	if !r.fetchTried && r.gapFetch() {
		r.fetchTried = true
		r.timer.Reset(r.viewTimeout())
		return
	}
	r.fetchTried = false
	// Links are lossy in general: before escalating to yet another view,
	// retransmit the current view-change vote once — it is the protocol's
	// only retransmission mechanism, and without it view-change quorums
	// may never assemble under loss.
	if r.inViewChange && r.lastVC != nil && !r.vcResent {
		r.vcResent = true
		r.ep.Multicast(r.cfg.Nodes, msgViewChange, *r.lastVC)
		r.timer.Reset(r.viewTimeout() * 2)
		return
	}
	r.startViewChange(r.view + 1)
}

// startViewChange abandons the current view and broadcasts the prepared
// certificates the next primary must preserve.
func (r *Replica) startViewChange(newV uint64) {
	if newV <= r.view && r.inViewChange {
		return
	}
	// Climb the timeout ladder on every view change. Resetting on mere
	// progress would re-enter the churn zone while a deep backlog is
	// still draining — each view change grows more expensive as prepared
	// certificates accumulate, so the ladder only decays once a view
	// demonstrably drains work (see executeReady).
	r.vcBackoff++
	r.execsInView = 0
	r.view = newV
	r.inViewChange = true
	r.cfg.Obs.Inc("pbft/view_changes")
	r.cfg.Obs.SetGauge("pbft/view", int64(newV))
	r.cfg.Obs.NoteViewChange()
	r.cfg.Obs.Logger("pbft").Warn("view change started",
		"node", int(r.cfg.Self), "view", newV, "last_exec", r.lastExec)
	var certs []preparedCert
	for seq, s := range r.slots {
		if seq <= r.lastExec {
			continue
		}
		if s.hasPP && (s.prepares.Count(viewKey(s.ppView), s.digest) >= r.cfg.ByzQuorum() || s.prepared) {
			certs = append(certs, preparedCert{Seq: seq, Digest: s.digest, Value: s.value})
		}
	}
	// Executed-but-above-lastExec cannot happen (execution is in order),
	// but committed slots above lastExec must survive too: they are
	// prepared by definition, so the loop above already includes them.
	vc := viewChange{
		NewView: newV, Prepared: certs,
		Sig: r.cfg.SignPart([]byte(msgViewChange), consensus.U64(newV)),
	}
	r.lastVC = &vc
	r.vcResent = false
	r.ep.Multicast(r.cfg.Nodes, msgViewChange, vc)
	r.onViewChange(r.cfg.Self, &vc)
	// If the next primary is also faulty, time out again into view+1.
	r.timer.Reset(r.viewTimeout() * 2)
}

func (r *Replica) onViewChange(from types.NodeID, vc *viewChange) {
	if vc.NewView <= r.view && !(vc.NewView == r.view && r.inViewChange) {
		return
	}
	m, ok := r.vcVotes[vc.NewView]
	if !ok {
		m = map[types.NodeID]*viewChange{}
		r.vcVotes[vc.NewView] = m
	}
	m[from] = vc

	// Straggler resynchronization: if this replica is stable in a view
	// established by a NewView, re-offer that NewView to the sender so a
	// lone replica that timed itself into a dead-end view can rejoin.
	if !r.inViewChange && r.storedNV != nil && from != r.cfg.Self {
		r.ep.Send(from, msgNewView, *r.storedNV)
	}
	// View synchronization under loss: a peer still voting for an older
	// view missed our (higher) view-change vote — resend it directly.
	if r.inViewChange && r.lastVC != nil && from != r.cfg.Self && vc.NewView < r.lastVC.NewView {
		r.ep.Send(from, msgViewChange, *r.lastVC)
	}

	// Joining a view change f+1 other replicas already started prevents a
	// slow replica from being left behind.
	if len(m) >= r.cfg.MaxByzFaults()+1 && vc.NewView > r.view {
		r.startViewChange(vc.NewView)
	}
	if len(m) >= r.cfg.ByzQuorum() && r.primary(vc.NewView) == r.cfg.Self {
		r.sendNewView(vc.NewView, m)
	}
}

func (r *Replica) sendNewView(newV uint64, vcs map[types.NodeID]*viewChange) {
	// Merge prepared certificates; for duplicate seqs any correct cert
	// carries the same digest (quorum intersection), so the first wins.
	merged := map[uint64]preparedCert{}
	var maxSeq uint64
	for _, vc := range vcs {
		for _, c := range vc.Prepared {
			if _, ok := merged[c.Seq]; !ok {
				merged[c.Seq] = c
			}
			if c.Seq > maxSeq {
				maxSeq = c.Seq
			}
		}
	}
	certs := make([]preparedCert, 0, len(merged))
	for _, c := range merged {
		certs = append(certs, c)
	}
	nv := newView{
		NewView: newV, Certs: certs, MaxSeq: maxSeq,
		Sig: r.cfg.SignPart([]byte(msgNewView), consensus.U64(newV)),
	}
	r.ep.Multicast(r.cfg.Nodes, msgNewView, nv)
	r.onNewView(r.cfg.Self, nv)
}

func (r *Replica) onNewView(from types.NodeID, nv newView) {
	// Accept any NewView newer than the last accepted one, even when the
	// local raw view counter has drifted above it: a replica that timed
	// out into views nobody else joined must be able to rejoin the view
	// the quorum actually established.
	if nv.NewView <= r.lastNV || from != r.primary(nv.NewView) {
		return
	}
	r.lastNV = nv.NewView
	r.storedNV = &nv
	r.view = nv.NewView
	r.inViewChange = false
	r.proposed = map[types.Hash]bool{}
	r.cfg.Obs.SetGauge("pbft/view", int64(nv.NewView))
	r.cfg.Obs.Logger("pbft").Info("entered new view",
		"node", int(r.cfg.Self), "view", nv.NewView, "certs", len(nv.Certs))

	covered := map[uint64]bool{}
	for _, c := range nv.Certs {
		covered[c.Seq] = true
	}
	// Re-issue pre-prepares for surviving certificates and null-fill the
	// gaps so execution order has no holes.
	reissue := func(pp prePrepare) {
		if r.cfg.Self == r.primary(nv.NewView) {
			pp.Sig = r.cfg.SignPart([]byte(msgPrePrepare), consensus.U64(pp.View), consensus.U64(pp.Seq), pp.Digest[:])
			r.ep.Multicast(r.cfg.Nodes, msgPrePrepare, pp)
			r.acceptPrePrepare(r.cfg.Self, pp)
		}
	}
	for _, c := range nv.Certs {
		if s, ok := r.slots[c.Seq]; ok && s.executed {
			continue
		}
		// Reset per-view slot vote state lazily: acceptPrePrepare keys
		// votes by view, so stale votes cannot satisfy new-view quorums.
		if s, ok := r.slots[c.Seq]; ok {
			s.hasPP = false
			s.sentCommit = false
			s.resetAggPhase()
		}
		reissue(prePrepare{View: nv.NewView, Seq: c.Seq, Digest: c.Digest, Value: c.Value})
		r.proposed[c.Digest] = true
	}
	for seq := r.lastExec + 1; seq <= nv.MaxSeq; seq++ {
		if covered[seq] {
			continue
		}
		if s, ok := r.slots[seq]; ok {
			if s.executed {
				continue
			}
			s.hasPP = false
			s.sentCommit = false
			s.resetAggPhase()
		}
		reissue(prePrepare{View: nv.NewView, Seq: seq, Digest: types.ZeroHash, Value: nil})
	}
	if r.cfg.Self == r.primary(nv.NewView) && nv.MaxSeq >= r.nextSeq {
		r.nextSeq = nv.MaxSeq + 1
	}
	if r.cfg.Self == r.primary(nv.NewView) && r.nextSeq <= r.lastExec {
		r.nextSeq = r.lastExec + 1
	}

	// Re-forward outstanding requests to the new primary.
	for d, v := range r.pending {
		if r.isPrimary() {
			r.propose(d, v)
		} else {
			r.ep.Send(r.primary(r.view), msgRequest, request{Digest: d, Value: v})
		}
	}
	r.armTimer()
}
