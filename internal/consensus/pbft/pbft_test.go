package pbft

import (
	"fmt"
	"log/slog"
	"os"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

func cluster(t *testing.T, n int, opts ...network.Option) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New(opts...)
	var o *obs.Obs
	if os.Getenv("PBFT_DEBUG") != "" {
		o = obs.New()
		o.SetLogHandler(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug}))
	}
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond, Obs: o,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func val(i int) (string, types.Hash) {
	v := fmt.Sprintf("req-%d", i)
	return v, types.HashBytes([]byte(v))
}

// checkAgreement asserts all replicas decided the same digest per seq.
func checkAgreement(t *testing.T, all [][]consensus.Decision) {
	t.Helper()
	bySeq := map[uint64]types.Hash{}
	for ri, ds := range all {
		for _, d := range ds {
			if prev, ok := bySeq[d.Seq]; ok {
				if prev != d.Digest {
					t.Fatalf("replica %d decided seq %d = %v, another decided %v", ri, d.Seq, d.Digest, prev)
				}
			} else {
				bySeq[d.Seq] = d.Digest
			}
		}
	}
}

func TestNormalOperation(t *testing.T) {
	_, reps := cluster(t, 4)
	const k = 20
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%4].Submit(v, d) // submit via every replica, not just the leader
	}
	all := make([][]consensus.Decision, 4)
	for i, r := range reps {
		all[i] = consensus.WaitDecisions(r.Decisions(), k, 5*time.Second)
		if len(all[i]) != k {
			t.Fatalf("replica %d decided %d/%d", i, len(all[i]), k)
		}
		// In-order delivery.
		for j, d := range all[i] {
			if d.Seq != uint64(j+1) {
				t.Fatalf("replica %d decision %d has seq %d", i, j, d.Seq)
			}
		}
	}
	checkAgreement(t, all)
	// All k distinct requests decided exactly once.
	seen := map[types.Hash]bool{}
	for _, d := range all[0] {
		if seen[d.Digest] {
			t.Fatalf("digest %v decided twice", d.Digest)
		}
		seen[d.Digest] = true
	}
	if len(seen) != k {
		t.Fatalf("decided %d distinct requests, want %d", len(seen), k)
	}
}

func TestSubmitViaFollowerForwards(t *testing.T) {
	_, reps := cluster(t, 4)
	v, d := val(1)
	reps[2].Submit(v, d)
	got := consensus.WaitDecisions(reps[3].Decisions(), 1, 3*time.Second)
	if len(got) != 1 || got[0].Digest != d {
		t.Fatalf("got %v", got)
	}
	if got[0].Value.(string) != v {
		t.Fatalf("value = %v", got[0].Value)
	}
}

func TestCrashedLeaderViewChange(t *testing.T) {
	_, reps := cluster(t, 4)
	reps[0].Stop() // primary of view 0 dies before any request

	for i := 0; i < 5; i++ {
		v, d := val(i)
		reps[1].Submit(v, d)
	}
	all := make([][]consensus.Decision, 0, 3)
	for _, r := range reps[1:] {
		ds := consensus.WaitDecisions(r.Decisions(), 5, 10*time.Second)
		if len(ds) != 5 {
			t.Fatalf("replica %v decided %d/5 after leader crash", r.ID(), len(ds))
		}
		all = append(all, ds)
	}
	checkAgreement(t, all)
}

func TestBackToBackLeaderFailures(t *testing.T) {
	// Views 0 and 1 both have dead primaries; the protocol must reach
	// view 2 via repeated timeouts.
	_, reps := cluster(t, 7) // f=2
	reps[0].Stop()
	reps[1].Stop()
	v, d := val(0)
	reps[2].Submit(v, d)
	ds := consensus.WaitDecisions(reps[3].Decisions(), 1, 15*time.Second)
	if len(ds) != 1 || ds[0].Digest != d {
		t.Fatalf("no decision after two leader failures: %v", ds)
	}
}

func TestEquivocatingLeaderSafety(t *testing.T) {
	net, reps := cluster(t, 4)
	// Leader (node 0) equivocates on pre-prepares: different digests to
	// different replicas. Safety: no two replicas may decide different
	// digests for the same sequence number.
	net.SetFilter(0, func(m network.Message) []network.Message {
		pp, ok := m.Payload.(prePrepare)
		if !ok {
			return []network.Message{m}
		}
		forged := pp
		v := fmt.Sprintf("forged-%d", pp.Seq)
		forged.Digest = types.HashBytes([]byte(v))
		forged.Value = v
		// forged.Sig stays stale, but the test runs with signatures on,
		// so forge a fresh signature is impossible for the filter; the
		// receivers will drop it. Send the real one to half the nodes to
		// at least split the prepares.
		if m.To == 1 {
			return []network.Message{m}
		}
		return []network.Message{{From: 0, To: m.To, Type: m.Type, Payload: forged}}
	})

	for i := 0; i < 3; i++ {
		v, d := val(i)
		reps[1].Submit(v, d)
	}
	// Give the protocol time to either commit (after view change) or stall.
	time.Sleep(2 * time.Second)
	net.SetFilter(0, nil)

	all := make([][]consensus.Decision, 4)
	for i, r := range reps {
		all[i] = consensus.WaitDecisions(r.Decisions(), 3, 8*time.Second)
	}
	checkAgreement(t, all)
	// Liveness: the correct replicas eventually decided all 3 requests.
	for i := 1; i < 4; i++ {
		if len(all[i]) < 3 {
			t.Fatalf("replica %d decided only %d/3 after equivocation", i, len(all[i]))
		}
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	net, reps := cluster(t, 4)
	// Node 3 corrupts its prepare/commit signatures; with f=1 tolerance
	// the cluster must still decide, and node 3's votes must not count.
	net.SetFilter(3, func(m network.Message) []network.Message {
		if v, ok := m.Payload.(vote); ok {
			v.Sig = []byte("garbage")
			return []network.Message{{From: 3, To: m.To, Type: m.Type, Payload: v}}
		}
		return []network.Message{m}
	})
	v, d := val(0)
	reps[0].Submit(v, d)
	ds := consensus.WaitDecisions(reps[1].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 || ds[0].Digest != d {
		t.Fatalf("decision with tampered sigs: %v", ds)
	}
}

func TestDuplicateSubmitDecidedOnce(t *testing.T) {
	_, reps := cluster(t, 4)
	v, d := val(0)
	for i := 0; i < 5; i++ {
		reps[0].Submit(v, d)
	}
	v2, d2 := val(1)
	reps[0].Submit(v2, d2)
	ds := consensus.WaitDecisions(reps[2].Decisions(), 2, 3*time.Second)
	if len(ds) != 2 {
		t.Fatalf("decided %d", len(ds))
	}
	// No third decision should arrive: the duplicate was deduped.
	extra := consensus.WaitDecisions(reps[2].Decisions(), 1, 300*time.Millisecond)
	if len(extra) != 0 {
		t.Fatalf("duplicate request decided again: %v", extra)
	}
}

func TestLossyNetworkStillDecides(t *testing.T) {
	// 10% loss: retransmission-free PBFT can stall on specific drops, but
	// view changes re-propose prepared requests, so the request should
	// still eventually commit.
	_, reps := cluster(t, 4, network.WithDropRate(0.10), network.WithSeed(42))
	const k = 5
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	ds := consensus.WaitDecisions(reps[1].Decisions(), k, 20*time.Second)
	if len(ds) < k {
		t.Fatalf("decided %d/%d under loss", len(ds), k)
	}
}

func TestStopIdempotent(t *testing.T) {
	_, reps := cluster(t, 4)
	reps[0].Stop()
	reps[0].Stop()
}

func BenchmarkPBFTThroughput4(b *testing.B) {
	benchN(b, 4)
}

func BenchmarkPBFTThroughput7(b *testing.B) {
	benchN(b, 7)
}

func benchN(b *testing.B, n int) {
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 5 * time.Second, DisableSig: true,
		})
		reps[i].Start()
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()
	b.ResetTimer()
	done := make(chan struct{})
	go func() {
		defer close(done)
		consensus.WaitDecisions(reps[0].Decisions(), b.N, time.Minute)
	}()
	for i := 0; i < b.N; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	<-done
}

func TestCheckpointGarbageCollection(t *testing.T) {
	_, reps := cluster(t, 4)
	// Push several checkpoint windows of decisions through.
	const k = 3*checkpointEvery + 10
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	// Generous deadline: under -race this workload rides through double-
	// digit view changes, and capped backoff views are multi-second.
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 120*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d decided %d/%d", i, len(ds), k)
		}
	}
	// Checkpoint GC is asynchronous: a laggard replica reaches its last
	// decision from commit traffic enqueued long before its peers'
	// checkpoint votes, so those votes may still be queued in its inbox
	// at this point. Give each replica time to drain and stabilize
	// before freezing the cluster — stopping at the instant of the last
	// decision would assert on a half-delivered protocol state.
	const bound = 2*checkpointEvery + 16
	deadline := time.Now().Add(30 * time.Second)
	for _, r := range reps {
		for r.SlotCount() > bound && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
	}
	for _, r := range reps {
		r.Stop()
	}
	// Slots at or below stable-window must be reclaimed: far fewer than k
	// retained (exactly: everything ≤ 2*checkpointEvery reclaimed once
	// the 3rd checkpoint stabilized).
	for i, r := range reps {
		if got := r.SlotCount(); got > bound {
			t.Fatalf("replica %d retains %d slots after GC (k=%d)", i, got, k)
		}
	}
}

// TestCrashRecoveryCatchUp crash-stops a follower, runs a workload it never
// sees, then rejoins a fresh incarnation on the same network and asserts it
// replays the complete decision log (status gossip reveals the lag, gap
// fetches chain through knownExec until caught up).
func TestCrashRecoveryCatchUp(t *testing.T) {
	const n = 4
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	mk := func(i int) *Replica {
		return New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond,
		})
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = mk(i)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	submit := func(i int) {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	const pre = 4
	for i := 0; i < pre; i++ {
		submit(i)
	}
	ref := consensus.WaitDecisions(reps[0].Decisions(), pre, 10*time.Second)
	for i := 1; i < n; i++ {
		if got := len(consensus.WaitDecisions(reps[i].Decisions(), pre, 10*time.Second)); got != pre {
			t.Fatalf("replica %d decided %d/%d before crash", i, got, pre)
		}
	}

	const victim = n - 1
	net.Crash(types.NodeID(victim))
	reps[victim].Stop()

	const during = 4
	for i := pre; i < pre+during; i++ {
		submit(i)
	}
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), during, 10*time.Second)...)
	if len(ref) != pre+during {
		t.Fatalf("live cluster decided %d/%d during crash", len(ref), pre+during)
	}

	// Restart: a fresh, empty incarnation rejoins the same network.
	net.Rejoin(types.NodeID(victim))
	net.Restore(types.NodeID(victim))
	reps[victim] = mk(victim)
	reps[victim].Start()

	// One post-restart probe keeps traffic flowing while catch-up runs.
	submit(pre + during)
	const total = pre + during + 1
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), 1, 10*time.Second)...)
	ds := consensus.WaitDecisions(reps[victim].Decisions(), total, 20*time.Second)
	if len(ds) != total {
		t.Fatalf("restarted replica caught up %d/%d decisions", len(ds), total)
	}
	for j, dec := range ds {
		if dec.Seq != uint64(j+1) || dec.Digest != ref[j].Digest {
			t.Fatalf("restarted replica decision %d = (seq %d, %v), want (seq %d, %v)",
				j, dec.Seq, dec.Digest, ref[j].Seq, ref[j].Digest)
		}
	}
}

// TestPartitionDuringViewChange isolates the view-0 primary behind a
// partition: the majority must complete a view change amongst themselves
// and keep committing, and the stale primary must catch up on the decided
// log (via status gossip and gap fetches) once the partition heals.
func TestPartitionDuringViewChange(t *testing.T) {
	net, reps := cluster(t, 4)
	net.Partition([]types.NodeID{0}, []types.NodeID{1, 2, 3})

	const k = 5
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[1].Submit(v, d)
	}
	all := make([][]consensus.Decision, 4)
	for i := 1; i < 4; i++ {
		all[i] = consensus.WaitDecisions(reps[i].Decisions(), k, 15*time.Second)
		if len(all[i]) != k {
			t.Fatalf("replica %d decided %d/%d with primary partitioned away", i, len(all[i]), k)
		}
	}

	// Heal: node 0 rejoins holding a stale view and an empty log; the
	// others' status gossip reveals the gap and fetches chain it closed.
	net.Heal()
	v, d := val(k)
	reps[1].Submit(v, d)
	all[0] = consensus.WaitDecisions(reps[0].Decisions(), k+1, 20*time.Second)
	if len(all[0]) != k+1 {
		t.Fatalf("healed primary caught up %d/%d decisions", len(all[0]), k+1)
	}
	checkAgreement(t, all)
}

// aggCluster builds a cluster running aggregate-vote mode: one shared
// Schnorr key set, certificates relayed by the primary, optional vote
// batching.
func aggCluster(t *testing.T, n int, batch bool) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New()
	keys := crypto.NewKeyring(n)
	voteKeys := quorumcert.NewKeys()
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout:        150 * time.Millisecond,
			AggregateVotes: true, VoteKeys: voteKeys, BatchVotes: batch,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func TestAggregatedNormalOperation(t *testing.T) {
	_, reps := aggCluster(t, 4, false)
	const k = 12
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%4].Submit(v, d)
	}
	all := make([][]consensus.Decision, 4)
	for i, r := range reps {
		all[i] = consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(all[i]) != k {
			t.Fatalf("replica %d decided %d/%d in aggregate mode", i, len(all[i]), k)
		}
		for j, d := range all[i] {
			if d.Seq != uint64(j+1) {
				t.Fatalf("replica %d decision %d has seq %d", i, j, d.Seq)
			}
		}
	}
	checkAgreement(t, all)
}

func TestAggregatedWithBatchingCommits(t *testing.T) {
	_, reps := aggCluster(t, 7, true)
	const k = 8
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%7].Submit(v, d)
	}
	all := make([][]consensus.Decision, 7)
	for i, r := range reps {
		all[i] = consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(all[i]) != k {
			t.Fatalf("replica %d decided %d/%d with batching", i, len(all[i]), k)
		}
	}
	checkAgreement(t, all)
}

// TestAggregatedFewerMessages pins the point of the subsystem: per decision,
// certificate relay costs fewer messages than all-to-all counted voting.
func TestAggregatedFewerMessages(t *testing.T) {
	const n, k = 7, 10
	run := func(agg bool) int64 {
		var net *network.Network
		var reps []*Replica
		if agg {
			net, reps = aggCluster(t, n, false)
		} else {
			net, reps = cluster(t, n)
		}
		// Warm up one decision so timers and gossip settle, then measure.
		v, d := val(10000)
		reps[0].Submit(v, d)
		for _, r := range reps {
			if len(consensus.WaitDecisions(r.Decisions(), 1, 5*time.Second)) != 1 {
				t.Fatal("warm-up decision missing")
			}
		}
		net.ResetStats()
		for i := 0; i < k; i++ {
			v, d := val(i)
			reps[0].Submit(v, d)
		}
		for _, r := range reps {
			if got := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second); len(got) != k {
				t.Fatalf("decided %d/%d (agg=%v)", len(got), k, agg)
			}
		}
		return net.StatsSnapshot().Sent
	}
	counted := run(false)
	aggregated := run(true)
	if aggregated >= counted {
		t.Fatalf("aggregate mode sent %d messages, counted mode %d — expected fewer", aggregated, counted)
	}
	t.Logf("n=%d k=%d: counted=%d aggregated=%d msgs", n, k, counted, aggregated)
}

// TestAggregatedViewChange kills the view-0 primary under aggregate mode:
// the cluster must still rotate views and decide, proving the prepared flag
// feeds view-change certificate collection.
func TestAggregatedViewChange(t *testing.T) {
	_, reps := aggCluster(t, 4, false)
	reps[0].Stop()
	for i := 0; i < 5; i++ {
		v, d := val(i)
		reps[1].Submit(v, d)
	}
	all := make([][]consensus.Decision, 0, 3)
	for _, r := range reps[1:] {
		ds := consensus.WaitDecisions(r.Decisions(), 5, 10*time.Second)
		if len(ds) != 5 {
			t.Fatalf("replica %v decided %d/5 after primary crash in aggregate mode", r.ID(), len(ds))
		}
		all = append(all, ds)
	}
	checkAgreement(t, all)
}

// TestAggregatedUnsignedMode runs aggregate mode under DisableSig:
// certificates degrade to signer bitmaps but the flow is unchanged.
func TestAggregatedUnsignedMode(t *testing.T) {
	net := network.New()
	nodes := []types.NodeID{0, 1, 2, 3}
	keys := crypto.NewKeyring(4)
	reps := make([]*Replica, 4)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 150 * time.Millisecond, DisableSig: true, AggregateVotes: true,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	v, d := val(1)
	reps[0].Submit(v, d)
	for i, r := range reps {
		if got := consensus.WaitDecisions(r.Decisions(), 1, 5*time.Second); len(got) != 1 {
			t.Fatalf("replica %d decided %d/1 in unsigned aggregate mode", i, len(got))
		}
	}
}
