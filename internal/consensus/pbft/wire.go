package pbft

import (
	"permchain/internal/quorumcert"
	"permchain/internal/wire"
)

// Frame codecs for every pbft message (wire tags 64–79). They live in
// this package because the message types are unexported; the typed
// handles also back the allocs/op gates in wire_test.go. Tags are
// release artifacts — append, never renumber.
var (
	requestCodec    = wire.Register[request](64, putRequest, getRequest)
	prePrepareCodec = wire.Register[prePrepare](65, putPrePrepare, getPrePrepare)
	voteCodec       = wire.Register[vote](66, putVote, getVote)
	partialCodec    = wire.Register[partialMsg](67, putPartialMsg, getPartialMsg)
	certCodec       = wire.Register[certMsg](68, putCertMsg, getCertMsg)
	viewChangeCodec = wire.Register[viewChange](69, putViewChange, getViewChange)
	newViewCodec    = wire.Register[newView](70, putNewView, getNewView)
	fetchCodec      = wire.Register[fetch](71, putFetch, getFetch)
	fetchReplyCodec = wire.Register[fetchReply](72, putFetchReply, getFetchReply)
	statusCodec     = wire.Register[status](73, putStatus, getStatus)
	checkpointCodec = wire.Register[checkpoint](74, putCheckpoint, getCheckpoint)
)

func init() {
	wire.Intern(msgRequest, msgPrePrepare, msgPrepare, msgCommit,
		msgViewChange, msgNewView, msgFetch, msgFetchReply,
		msgCheckpoint, msgStatus, msgPrepPartial, msgCommPartial,
		msgPrepCert, msgCommCert)
}

func putRequest(e *wire.Encoder, m *request) {
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getRequest(d *wire.Decoder, m *request) {
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putPrePrepare(e *wire.Encoder, m *prePrepare) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Hash(m.Digest)
	e.Any(m.Value)
	e.Bytes(m.Sig)
}

func getPrePrepare(d *wire.Decoder, m *prePrepare) {
	m.View = d.U64()
	m.Seq = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
	m.Sig = d.AppendBytes(m.Sig)
}

func putVote(e *wire.Encoder, m *vote) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Hash(m.Digest)
	e.Bytes(m.Sig)
}

func getVote(d *wire.Decoder, m *vote) {
	m.View = d.U64()
	m.Seq = d.U64()
	m.Digest = d.Hash()
	m.Sig = d.AppendBytes(m.Sig)
}

func putPartialMsg(e *wire.Encoder, m *partialMsg) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Hash(m.Digest)
	quorumcert.PutPartial(e, &m.Part)
}

func getPartialMsg(d *wire.Decoder, m *partialMsg) {
	m.View = d.U64()
	m.Seq = d.U64()
	m.Digest = d.Hash()
	quorumcert.GetPartial(d, &m.Part)
}

func putCertMsg(e *wire.Encoder, m *certMsg) {
	e.U64(m.View)
	e.U64(m.Seq)
	e.Hash(m.Digest)
	quorumcert.PutCert(e, &m.Cert)
}

func getCertMsg(d *wire.Decoder, m *certMsg) {
	m.View = d.U64()
	m.Seq = d.U64()
	m.Digest = d.Hash()
	quorumcert.GetCert(d, &m.Cert)
}

func putPreparedCert(e *wire.Encoder, c *preparedCert) {
	e.U64(c.Seq)
	e.Hash(c.Digest)
	e.Any(c.Value)
}

func getPreparedCert(d *wire.Decoder, c *preparedCert) {
	c.Seq = d.U64()
	c.Digest = d.Hash()
	c.Value = d.Any()
}

func putViewChange(e *wire.Encoder, m *viewChange) {
	e.U64(m.NewView)
	e.U32(uint32(len(m.Prepared)))
	for i := range m.Prepared {
		putPreparedCert(e, &m.Prepared[i])
	}
	e.Bytes(m.Sig)
}

func getViewChange(d *wire.Decoder, m *viewChange) {
	m.NewView = d.U64()
	n := d.Count(8)
	m.Prepared = m.Prepared[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		var c preparedCert
		getPreparedCert(d, &c)
		m.Prepared = append(m.Prepared, c)
	}
	if len(m.Prepared) == 0 {
		m.Prepared = nil
	}
	m.Sig = d.AppendBytes(m.Sig)
}

func putNewView(e *wire.Encoder, m *newView) {
	e.U64(m.NewView)
	e.U32(uint32(len(m.Certs)))
	for i := range m.Certs {
		putPreparedCert(e, &m.Certs[i])
	}
	e.U64(m.MaxSeq)
	e.Bytes(m.Sig)
}

func getNewView(d *wire.Decoder, m *newView) {
	m.NewView = d.U64()
	n := d.Count(8)
	m.Certs = m.Certs[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		var c preparedCert
		getPreparedCert(d, &c)
		m.Certs = append(m.Certs, c)
	}
	if len(m.Certs) == 0 {
		m.Certs = nil
	}
	m.MaxSeq = d.U64()
	m.Sig = d.AppendBytes(m.Sig)
}

func putFetch(e *wire.Encoder, m *fetch) { e.U64(m.Seq) }

func getFetch(d *wire.Decoder, m *fetch) { m.Seq = d.U64() }

func putFetchReply(e *wire.Encoder, m *fetchReply) {
	e.U64(m.Seq)
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getFetchReply(d *wire.Decoder, m *fetchReply) {
	m.Seq = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putStatus(e *wire.Encoder, m *status) {
	e.U64(m.LastExec)
	e.Bytes(m.Sig)
}

func getStatus(d *wire.Decoder, m *status) {
	m.LastExec = d.U64()
	m.Sig = d.AppendBytes(m.Sig)
}

func putCheckpoint(e *wire.Encoder, m *checkpoint) {
	e.U64(m.Seq)
	e.Hash(m.Hist)
	e.Bytes(m.Sig)
}

func getCheckpoint(d *wire.Decoder, m *checkpoint) {
	m.Seq = d.U64()
	m.Hist = d.Hash()
	m.Sig = d.AppendBytes(m.Sig)
}
