package consensus

import (
	"testing"
	"time"
)

func TestLoopTimerFires(t *testing.T) {
	lt := NewLoopTimer()
	lt.Reset(5 * time.Millisecond)
	select {
	case <-lt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestLoopTimerStopDiscardsTick(t *testing.T) {
	lt := NewLoopTimer()
	lt.Reset(time.Millisecond)
	time.Sleep(20 * time.Millisecond) // tick is in the channel
	lt.Stop()
	select {
	case <-lt.C():
		t.Fatal("tick survived Stop")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestLoopTimerNoStaleTickAfterReset is the regression test for the
// generation filter: a superseded arm racing its fire against Reset must
// never deliver a tick attributed to the new arm. Before the fix, the
// fire callback captured gen but never compared it, so an AfterFunc that
// had already started when Reset drained the channel could still inject a
// spurious tick afterwards.
func TestLoopTimerNoStaleTickAfterReset(t *testing.T) {
	lt := NewLoopTimer()
	for i := 0; i < 300; i++ {
		// Arm short and re-arm long right around the firing instant, to
		// maximize the chance the short arm's callback is mid-flight.
		lt.Reset(500 * time.Microsecond)
		time.Sleep(500 * time.Microsecond)
		lt.Reset(time.Hour)
		select {
		case <-lt.C():
			t.Fatalf("iteration %d: stale tick delivered after Reset", i)
		default:
		}
	}
	// Give any straggling callbacks a moment, then check once more.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-lt.C():
		t.Fatal("stale tick delivered late after Reset")
	default:
	}
	lt.Stop()
}

func TestLoopTimerResetRearms(t *testing.T) {
	lt := NewLoopTimer()
	lt.Reset(time.Hour)
	lt.Reset(2 * time.Millisecond) // shorter re-arm wins
	select {
	case <-lt.C():
	case <-time.After(2 * time.Second):
		t.Fatal("re-armed timer never fired")
	}
}
