package raft

import (
	"permchain/internal/wire"
)

// Frame codecs for every raft message (wire tags 144–159).
var (
	requestVoteCodec = wire.Register[requestVote](144, putRequestVote, getRequestVote)
	voteRespCodec    = wire.Register[voteResp](145, putVoteResp, getVoteResp)
	appendCodec      = wire.Register[appendEntries](146, putAppendEntries, getAppendEntries)
	appendRespCodec  = wire.Register[appendResp](147, putAppendResp, getAppendResp)
	forwardCodec     = wire.Register[forward](148, putForward, getForward)
)

func init() {
	wire.Intern(msgRequestVote, msgVoteResp, msgAppend, msgAppendResp, msgForward)
}

func putRequestVote(e *wire.Encoder, m *requestVote) {
	e.U64(m.Term)
	e.U64(m.LastLogIndex)
	e.U64(m.LastLogTerm)
}

func getRequestVote(d *wire.Decoder, m *requestVote) {
	m.Term = d.U64()
	m.LastLogIndex = d.U64()
	m.LastLogTerm = d.U64()
}

func putVoteResp(e *wire.Encoder, m *voteResp) {
	e.U64(m.Term)
	e.Bool(m.Granted)
}

func getVoteResp(d *wire.Decoder, m *voteResp) {
	m.Term = d.U64()
	m.Granted = d.Bool()
}

func putEntry(e *wire.Encoder, v *entry) {
	e.U64(v.Term)
	e.Hash(v.Digest)
	e.Any(v.Value)
}

func getEntry(d *wire.Decoder, v *entry) {
	v.Term = d.U64()
	v.Digest = d.Hash()
	v.Value = d.Any()
}

func putAppendEntries(e *wire.Encoder, m *appendEntries) {
	e.U64(m.Term)
	e.U64(m.PrevLogIndex)
	e.U64(m.PrevLogTerm)
	e.U32(uint32(len(m.Entries)))
	for i := range m.Entries {
		putEntry(e, &m.Entries[i])
	}
	e.U64(m.LeaderCommit)
}

func getAppendEntries(d *wire.Decoder, m *appendEntries) {
	m.Term = d.U64()
	m.PrevLogIndex = d.U64()
	m.PrevLogTerm = d.U64()
	n := d.Count(32)
	m.Entries = m.Entries[:0]
	for i := 0; i < n && d.Err() == nil; i++ {
		var v entry
		getEntry(d, &v)
		m.Entries = append(m.Entries, v)
	}
	if len(m.Entries) == 0 {
		m.Entries = nil
	}
	m.LeaderCommit = d.U64()
}

func putAppendResp(e *wire.Encoder, m *appendResp) {
	e.U64(m.Term)
	e.Bool(m.Success)
	e.U64(m.Match)
}

func getAppendResp(d *wire.Decoder, m *appendResp) {
	m.Term = d.U64()
	m.Success = d.Bool()
	m.Match = d.U64()
}

func putForward(e *wire.Encoder, m *forward) {
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getForward(d *wire.Decoder, m *forward) {
	m.Digest = d.Hash()
	m.Value = d.Any()
}
