package raft

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/types"
)

func cluster(t *testing.T, n int, opts ...network.Option) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New(opts...)
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 100 * time.Millisecond,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func val(i int) (string, types.Hash) {
	v := fmt.Sprintf("cmd-%d", i)
	return v, types.HashBytes([]byte(v))
}

func TestElectsLeaderAndCommits(t *testing.T) {
	_, reps := cluster(t, 3)
	const k = 10
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%3].Submit(v, d)
	}
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 5*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d applied %d/%d", i, len(ds), k)
		}
		for j, d := range ds {
			if d.Seq != uint64(j+1) {
				t.Fatalf("replica %d decision %d seq %d", i, j, d.Seq)
			}
		}
	}
}

func TestAllReplicasAgreeOnOrder(t *testing.T) {
	_, reps := cluster(t, 5)
	const k = 30
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%5].Submit(v, d)
	}
	var ref []consensus.Decision
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d applied %d/%d", i, len(ds), k)
		}
		if ref == nil {
			ref = ds
			continue
		}
		for j := range ds {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("replica %d seq %d digest mismatch", i, j+1)
			}
		}
	}
}

func TestLeaderCrashFailover(t *testing.T) {
	_, reps := cluster(t, 5)
	// Commit one entry to discover the leader.
	v0, d0 := val(0)
	reps[0].Submit(v0, d0)
	ds := consensus.WaitDecisions(reps[1].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 {
		t.Fatal("initial commit failed")
	}
	// Find and kill the leader.
	var killed *Replica
	for _, r := range reps {
		if r.IsLeader() {
			killed = r
			break
		}
	}
	if killed == nil {
		t.Fatal("no leader found")
	}
	killed.Stop()

	// Submit through a surviving node.
	var survivor *Replica
	for _, r := range reps {
		if r != killed {
			survivor = r
			break
		}
	}
	const k = 5
	for i := 1; i <= k; i++ {
		v, d := val(i)
		survivor.Submit(v, d)
	}
	// Another survivor (whose decision stream we have not drained yet)
	// must see the initial entry plus the k new ones.
	var other *Replica
	for _, r := range reps {
		if r != killed && r != reps[1] {
			other = r
			break
		}
	}
	total := consensus.WaitDecisions(other.Decisions(), k+1, 10*time.Second)
	if len(total) < k+1 {
		t.Fatalf("survivor applied %d/%d after failover", len(total), k+1)
	}
}

func TestMinorityPartitionNoProgressThenRecovery(t *testing.T) {
	net, reps := cluster(t, 5)
	v0, d0 := val(0)
	reps[0].Submit(v0, d0)
	// Drain the initial decision from every replica so later reads see
	// only post-partition decisions.
	for i, r := range reps {
		if len(consensus.WaitDecisions(r.Decisions(), 1, 5*time.Second)) != 1 {
			t.Fatalf("replica %d missed initial commit", i)
		}
	}
	// Partition nodes {0,1} away from {2,3,4}.
	net.Partition([]types.NodeID{0, 1}, []types.NodeID{2, 3, 4})
	v1, d1 := val(1)
	reps[0].Submit(v1, d1) // lands in minority side
	// Majority side can still commit.
	v2, d2 := val(2)
	reps[2].Submit(v2, d2)
	ds := consensus.WaitDecisions(reps[3].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 || ds[0].Digest != d2 {
		t.Fatalf("majority side failed to commit: %v", ds)
	}
	// Minority must NOT commit the stranded entry.
	stale := consensus.WaitDecisions(reps[1].Decisions(), 1, 500*time.Millisecond)
	if len(stale) != 0 {
		t.Fatalf("minority committed during partition: %v", stale)
	}
	// Heal: the stranded entry eventually commits everywhere.
	net.Heal()
	got := consensus.WaitDecisions(reps[1].Decisions(), 2, 10*time.Second)
	if len(got) != 2 {
		t.Fatalf("minority applied %d/2 after heal", len(got))
	}
}

func TestDuplicateSubmitAppliedOnce(t *testing.T) {
	_, reps := cluster(t, 3)
	v, d := val(0)
	for i := 0; i < 4; i++ {
		reps[0].Submit(v, d)
		reps[1].Submit(v, d)
	}
	ds := consensus.WaitDecisions(reps[2].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 {
		t.Fatalf("applied %d", len(ds))
	}
	extra := consensus.WaitDecisions(reps[2].Decisions(), 1, 400*time.Millisecond)
	if len(extra) != 0 {
		t.Fatalf("duplicate applied: %v", extra)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	_, reps := cluster(t, 1)
	v, d := val(0)
	reps[0].Submit(v, d)
	ds := consensus.WaitDecisions(reps[0].Decisions(), 1, 3*time.Second)
	if len(ds) != 1 || ds[0].Digest != d {
		t.Fatalf("single-node commit failed: %v", ds)
	}
}

// TestCrashRecoveryCatchUp crash-stops a non-leader, runs a workload it
// never sees, then rejoins a fresh incarnation on the same network and
// asserts the leader's log-matching rewind replays the full log to it.
func TestCrashRecoveryCatchUp(t *testing.T) {
	const n = 3
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	mk := func(i int) *Replica {
		return New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 100 * time.Millisecond,
		})
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = mk(i)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	submit := func(i int) {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	const pre = 4
	for i := 0; i < pre; i++ {
		submit(i)
	}
	ref := consensus.WaitDecisions(reps[0].Decisions(), pre, 10*time.Second)
	for i := 1; i < n; i++ {
		if got := len(consensus.WaitDecisions(reps[i].Decisions(), pre, 10*time.Second)); got != pre {
			t.Fatalf("replica %d applied %d/%d before crash", i, got, pre)
		}
	}

	// Crash a non-leader so the cluster keeps its majority and leader.
	victim := n - 1
	if reps[victim].IsLeader() {
		victim = n - 2
	}
	net.Crash(types.NodeID(victim))
	reps[victim].Stop()

	const during = 4
	for i := pre; i < pre+during; i++ {
		submit(i)
	}
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), during, 10*time.Second)...)
	if len(ref) != pre+during {
		t.Fatalf("live cluster applied %d/%d during crash", len(ref), pre+during)
	}

	// Restart: a fresh, empty incarnation rejoins the same network.
	net.Rejoin(types.NodeID(victim))
	net.Restore(types.NodeID(victim))
	reps[victim] = mk(victim)
	reps[victim].Start()

	// One post-restart probe keeps traffic flowing while catch-up runs.
	submit(pre + during)
	const total = pre + during + 1
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), 1, 10*time.Second)...)
	ds := consensus.WaitDecisions(reps[victim].Decisions(), total, 20*time.Second)
	if len(ds) != total {
		t.Fatalf("restarted replica caught up %d/%d decisions", len(ds), total)
	}
	for j, dec := range ds {
		if dec.Seq != uint64(j+1) || dec.Digest != ref[j].Digest {
			t.Fatalf("restarted replica decision %d = (seq %d, %v), want (seq %d, %v)",
				j, dec.Seq, dec.Digest, ref[j].Seq, ref[j].Digest)
		}
	}
}
