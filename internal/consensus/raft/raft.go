// Package raft implements the Raft consensus algorithm (Ongaro &
// Ousterhout, ATC'14), the crash-fault-tolerant ordering protocol used by
// Quorum and by Hyperledger Fabric's ordering service (§2.3.3). n
// replicas tolerate ⌊(n-1)/2⌋ crash failures; there is no Byzantine
// tolerance — a malicious leader can rewrite history, which is exactly
// the trade-off the tutorial draws between Raft-based and BFT-based
// permissioned systems.
package raft

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/types"
)

const (
	msgRequestVote = "raft/requestvote"
	msgVoteResp    = "raft/voteresp"
	msgAppend      = "raft/append"
	msgAppendResp  = "raft/appendresp"
	msgForward     = "raft/forward"
)

type role int

const (
	follower role = iota
	candidate
	leader
)

type entry struct {
	Term   uint64
	Digest types.Hash
	Value  any
}

type requestVote struct {
	Term         uint64
	LastLogIndex uint64
	LastLogTerm  uint64
}

type voteResp struct {
	Term    uint64
	Granted bool
}

type appendEntries struct {
	Term         uint64
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []entry
	LeaderCommit uint64
}

type appendResp struct {
	Term    uint64
	Success bool
	// Match is the highest log index known replicated on the follower
	// (on success), or a hint to rewind nextIndex (on failure).
	Match uint64
}

type forward struct {
	Digest types.Hash
	Value  any
}

// Replica is one Raft node.
type Replica struct {
	cfg consensus.Config
	ep  *network.Endpoint
	rng *rand.Rand

	decCh    chan consensus.Decision
	submitCh chan forward
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Event-loop state.
	role        role
	term        uint64
	votedFor    types.NodeID // -1 = none
	leaderID    types.NodeID // -1 = unknown
	log         []entry      // log[0] is a sentinel; real entries start at 1
	commitIndex uint64
	applied     uint64
	appliedSeq  uint64 // count of non-noop applied entries (decision seq)
	votes       map[types.NodeID]bool
	nextIndex   map[types.NodeID]uint64
	matchIndex  map[types.NodeID]uint64
	inLog       map[types.Hash]bool // digests present in the log (leader dedupe)
	appliedDig  map[types.Hash]bool // digests already applied
	pending     map[types.Hash]any  // submitted here, not yet applied
	forwarded   types.NodeID        // leader the pending set was last sent to (-1 none)
	timer       *consensus.LoopTimer

	// isLeader mirrors role==leader for observers outside the loop.
	isLeader atomic.Bool
}

// New creates a Raft replica. Call Start to launch it.
func New(cfg consensus.Config) *Replica {
	cfg = cfg.Defaulted()
	r := &Replica{
		cfg:        cfg,
		ep:         cfg.Net.Join(cfg.Self),
		rng:        rand.New(rand.NewSource(int64(cfg.Self)*7919 + 17)),
		decCh:      make(chan consensus.Decision, 65536),
		submitCh:   make(chan forward, 65536),
		stopCh:     make(chan struct{}),
		done:       make(chan struct{}),
		votedFor:   -1,
		leaderID:   -1,
		log:        make([]entry, 1),
		votes:      map[types.NodeID]bool{},
		nextIndex:  map[types.NodeID]uint64{},
		matchIndex: map[types.NodeID]uint64{},
		inLog:      map[types.Hash]bool{},
		appliedDig: map[types.Hash]bool{},
		pending:    map[types.Hash]any{},
		forwarded:  -1,
		timer:      consensus.NewLoopTimer(),
	}
	return r
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.NodeID { return r.cfg.Self }

// Decisions implements consensus.Replica.
func (r *Replica) Decisions() <-chan consensus.Decision { return r.decCh }

// Start implements consensus.Replica.
func (r *Replica) Start() { go r.loop() }

// Stop implements consensus.Replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
}

// Submit implements consensus.Replica.
func (r *Replica) Submit(value any, digest types.Hash) {
	r.cfg.Obs.Mark(digest, 0, obs.PhaseSubmit)
	select {
	case r.submitCh <- forward{Digest: digest, Value: value}:
	case <-r.stopCh:
	}
}

func (r *Replica) loop() {
	defer close(r.done)
	defer r.timer.Stop()
	r.resetElectionTimer()
	for {
		select {
		case <-r.stopCh:
			return
		case f := <-r.submitCh:
			r.onSubmit(f)
		case m := <-r.ep.Inbox():
			r.onMessage(m)
		case <-r.timer.C():
			r.onTimeout()
		}
	}
}

func (r *Replica) electionTimeout() time.Duration {
	base := r.cfg.Timeout
	return base + time.Duration(r.rng.Int63n(int64(base)))
}

func (r *Replica) resetElectionTimer() { r.timer.Reset(r.electionTimeout()) }

func (r *Replica) heartbeatInterval() time.Duration { return r.cfg.Timeout / 5 }

func (r *Replica) lastLogIndex() uint64 { return uint64(len(r.log) - 1) }

func (r *Replica) lastLogTerm() uint64 { return r.log[len(r.log)-1].Term }

func (r *Replica) onSubmit(f forward) {
	if r.appliedDig[f.Digest] {
		return
	}
	r.pending[f.Digest] = f.Value
	// Forward just this request; re-forwarding the whole pending set per
	// submission would be quadratic in client traffic.
	if r.role == leader {
		r.leaderAppend(f.Digest, f.Value)
		return
	}
	if r.leaderID >= 0 {
		r.ep.Send(r.leaderID, msgForward, forward{Digest: f.Digest, Value: f.Value})
	}
}

// dispatchPending pushes pending requests to the leader (or appends them
// locally when this replica is the leader).
func (r *Replica) dispatchPending() {
	if len(r.pending) == 0 {
		return
	}
	if r.role == leader {
		for d, v := range r.pending {
			r.leaderAppend(d, v)
		}
		return
	}
	// Forward once per (pending-set change, leader); re-forwarding on
	// every heartbeat would make client traffic quadratic.
	if r.leaderID >= 0 && r.forwarded != r.leaderID {
		for d, v := range r.pending {
			r.ep.Send(r.leaderID, msgForward, forward{Digest: d, Value: v})
		}
		r.forwarded = r.leaderID
	}
}

func (r *Replica) leaderAppend(digest types.Hash, value any) {
	if r.inLog[digest] || r.appliedDig[digest] {
		return
	}
	r.inLog[digest] = true
	r.cfg.Obs.Mark(digest, 0, obs.PhasePropose)
	r.log = append(r.log, entry{Term: r.term, Digest: digest, Value: value})
	r.matchIndex[r.cfg.Self] = r.lastLogIndex()
	r.broadcastAppend()
	r.advanceCommit() // a single-node cluster commits immediately
}

// IsLeader reports whether this replica currently believes it is the
// leader. Observational only: leadership can change immediately after.
func (r *Replica) IsLeader() bool { return r.isLeader.Load() }

func (r *Replica) becomeFollower(term uint64) {
	r.role = follower
	r.isLeader.Store(false)
	r.term = term
	r.votedFor = -1
	r.cfg.Obs.SetGauge("raft/term", int64(term))
	r.resetElectionTimer()
}

func (r *Replica) becomeCandidate() {
	r.cfg.Obs.Inc("raft/elections")
	r.cfg.Obs.NoteViewChange()
	r.role = candidate
	r.isLeader.Store(false)
	r.term++
	r.cfg.Obs.SetGauge("raft/term", int64(r.term))
	r.cfg.Obs.Logger("raft").Warn("election started",
		"node", int(r.cfg.Self), "term", r.term)
	r.votedFor = r.cfg.Self
	r.leaderID = -1
	r.votes = map[types.NodeID]bool{r.cfg.Self: true}
	r.resetElectionTimer()
	rv := requestVote{Term: r.term, LastLogIndex: r.lastLogIndex(), LastLogTerm: r.lastLogTerm()}
	r.ep.Multicast(r.cfg.Nodes, msgRequestVote, rv)
	if len(r.votes) >= r.cfg.Majority() { // single-node cluster
		r.becomeLeader()
	}
}

func (r *Replica) becomeLeader() {
	r.cfg.Obs.Inc("raft/leader_changes")
	r.cfg.Obs.Logger("raft").Info("became leader",
		"node", int(r.cfg.Self), "term", r.term)
	r.role = leader
	r.isLeader.Store(true)
	r.leaderID = r.cfg.Self
	for _, id := range r.cfg.Nodes {
		r.nextIndex[id] = r.lastLogIndex() + 1
		r.matchIndex[id] = 0
	}
	r.matchIndex[r.cfg.Self] = r.lastLogIndex()
	// A no-op entry lets the new leader commit entries from earlier terms
	// (Raft §5.4.2 forbids counting replicas for old-term entries).
	r.log = append(r.log, entry{Term: r.term, Digest: types.ZeroHash, Value: nil})
	r.matchIndex[r.cfg.Self] = r.lastLogIndex()
	r.dispatchPending()
	r.broadcastAppend()
	r.advanceCommit()
	r.timer.Reset(r.heartbeatInterval())
}

func (r *Replica) broadcastAppend() {
	for _, id := range r.cfg.Nodes {
		if id == r.cfg.Self {
			continue
		}
		r.sendAppend(id)
	}
}

func (r *Replica) sendAppend(to types.NodeID) {
	next := r.nextIndex[to]
	if next < 1 {
		next = 1
	}
	prev := next - 1
	var ents []entry
	if r.lastLogIndex() >= next {
		ents = append(ents, r.log[next:]...)
	}
	r.ep.Send(to, msgAppend, appendEntries{
		Term:         r.term,
		PrevLogIndex: prev,
		PrevLogTerm:  r.log[prev].Term,
		Entries:      ents,
		LeaderCommit: r.commitIndex,
	})
}

func (r *Replica) onTimeout() {
	if r.role == leader {
		r.broadcastAppend()
		r.timer.Reset(r.heartbeatInterval())
		return
	}
	r.becomeCandidate()
}

func (r *Replica) onMessage(m network.Message) {
	if !r.cfg.IsMember(m.From) {
		return // not part of this replica group
	}
	switch m.Type {
	case msgForward:
		f, ok := m.Payload.(forward)
		if !ok {
			return
		}
		if r.appliedDig[f.Digest] {
			return
		}
		if r.role == leader {
			r.leaderAppend(f.Digest, f.Value)
		} else {
			// Not the leader anymore: remember it so it is not lost.
			r.pending[f.Digest] = f.Value
			r.dispatchPending()
		}
	case msgRequestVote:
		rv, ok := m.Payload.(requestVote)
		if !ok {
			return
		}
		r.onRequestVote(m.From, rv)
	case msgVoteResp:
		vr, ok := m.Payload.(voteResp)
		if !ok {
			return
		}
		r.onVoteResp(m.From, vr)
	case msgAppend:
		ae, ok := m.Payload.(appendEntries)
		if !ok {
			return
		}
		r.onAppendEntries(m.From, ae)
	case msgAppendResp:
		ar, ok := m.Payload.(appendResp)
		if !ok {
			return
		}
		r.onAppendResp(m.From, ar)
	}
}

func (r *Replica) onRequestVote(from types.NodeID, rv requestVote) {
	if rv.Term > r.term {
		r.becomeFollower(rv.Term)
	}
	grant := false
	if rv.Term == r.term && (r.votedFor == -1 || r.votedFor == from) {
		// Candidate's log must be at least as up-to-date (Raft §5.4.1).
		upToDate := rv.LastLogTerm > r.lastLogTerm() ||
			(rv.LastLogTerm == r.lastLogTerm() && rv.LastLogIndex >= r.lastLogIndex())
		if upToDate {
			grant = true
			r.votedFor = from
			r.resetElectionTimer()
		}
	}
	r.ep.Send(from, msgVoteResp, voteResp{Term: r.term, Granted: grant})
}

func (r *Replica) onVoteResp(from types.NodeID, vr voteResp) {
	if vr.Term > r.term {
		r.becomeFollower(vr.Term)
		return
	}
	if r.role != candidate || vr.Term != r.term || !vr.Granted {
		return
	}
	r.votes[from] = true
	if len(r.votes) >= r.cfg.Majority() {
		r.becomeLeader()
	}
}

func (r *Replica) onAppendEntries(from types.NodeID, ae appendEntries) {
	if ae.Term > r.term {
		r.becomeFollower(ae.Term)
	}
	if ae.Term < r.term {
		r.ep.Send(from, msgAppendResp, appendResp{Term: r.term, Success: false})
		return
	}
	// Valid leader for this term.
	r.role = follower
	r.isLeader.Store(false)
	if r.leaderID != from {
		r.leaderID = from
		r.forwarded = -1
	}
	r.resetElectionTimer()
	r.dispatchPending()

	// Log consistency check.
	if ae.PrevLogIndex > r.lastLogIndex() || r.log[ae.PrevLogIndex].Term != ae.PrevLogTerm {
		hint := r.lastLogIndex()
		if ae.PrevLogIndex < hint {
			hint = ae.PrevLogIndex
		}
		r.ep.Send(from, msgAppendResp, appendResp{Term: r.term, Success: false, Match: hint})
		return
	}
	// Append, truncating conflicts.
	for i, e := range ae.Entries {
		idx := ae.PrevLogIndex + 1 + uint64(i)
		if idx <= r.lastLogIndex() {
			if r.log[idx].Term == e.Term {
				continue
			}
			for _, dropped := range r.log[idx:] {
				delete(r.inLog, dropped.Digest)
			}
			r.log = r.log[:idx]
		}
		r.log = append(r.log, e)
		r.inLog[e.Digest] = true
	}
	if ae.LeaderCommit > r.commitIndex {
		last := ae.PrevLogIndex + uint64(len(ae.Entries))
		if ae.LeaderCommit < last {
			r.commitIndex = ae.LeaderCommit
		} else {
			r.commitIndex = last
		}
		r.applyCommitted()
	}
	r.ep.Send(from, msgAppendResp, appendResp{Term: r.term, Success: true, Match: ae.PrevLogIndex + uint64(len(ae.Entries))})
}

func (r *Replica) onAppendResp(from types.NodeID, ar appendResp) {
	if ar.Term > r.term {
		r.becomeFollower(ar.Term)
		return
	}
	if r.role != leader || ar.Term != r.term {
		return
	}
	if !ar.Success {
		// Rewind and retry.
		if ar.Match+1 < r.nextIndex[from] {
			r.nextIndex[from] = ar.Match + 1
		} else if r.nextIndex[from] > 1 {
			r.nextIndex[from]--
		}
		r.sendAppend(from)
		return
	}
	if ar.Match > r.matchIndex[from] {
		r.matchIndex[from] = ar.Match
	}
	r.nextIndex[from] = ar.Match + 1
	r.advanceCommit()
}

// advanceCommit moves commitIndex to the highest index replicated on a
// majority whose entry is from the current term.
func (r *Replica) advanceCommit() {
	for idx := r.lastLogIndex(); idx > r.commitIndex; idx-- {
		if r.log[idx].Term != r.term {
			break // only current-term entries commit by counting (§5.4.2)
		}
		count := 0
		for _, id := range r.cfg.Nodes {
			if r.matchIndex[id] >= idx {
				count++
			}
		}
		if count >= r.cfg.Majority() {
			r.commitIndex = idx
			r.applyCommitted()
			// Propagate the new commit index to followers immediately
			// rather than waiting for the next heartbeat.
			r.broadcastAppend()
			break
		}
	}
}

func (r *Replica) applyCommitted() {
	for r.applied < r.commitIndex {
		r.applied++
		e := r.log[r.applied]
		delete(r.pending, e.Digest)
		if e.Digest.IsZero() {
			continue // leader no-op
		}
		r.appliedDig[e.Digest] = true
		r.appliedSeq++
		r.cfg.Obs.MarkLatency("raft/commit_latency", e.Digest, r.appliedSeq, obs.PhasePropose, obs.PhaseCommit)
		r.cfg.Obs.Mark(e.Digest, r.appliedSeq, obs.PhaseApply)
		r.cfg.Obs.Inc("raft/decisions")
		r.decCh <- consensus.Decision{Seq: r.appliedSeq, Digest: e.Digest, Value: e.Value, Node: r.cfg.Self}
	}
}
