package raft

import (
	"reflect"
	"testing"

	"permchain/internal/types"
	"permchain/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	dig := types.HashBytes([]byte("value"))
	msgs := []any{
		requestVote{Term: 3, LastLogIndex: 9, LastLogTerm: 2},
		voteResp{Term: 3, Granted: true},
		appendEntries{Term: 3, PrevLogIndex: 8, PrevLogTerm: 2,
			Entries:      []entry{{Term: 3, Digest: dig, Value: "payload"}},
			LeaderCommit: 7},
		appendEntries{Term: 3, PrevLogIndex: 8, PrevLogTerm: 2, LeaderCommit: 7}, // heartbeat
		appendResp{Term: 3, Success: true, Match: 9},
		appendResp{Term: 3, Success: false, Match: 4},
		forward{Digest: dig, Value: "payload"},
	}
	for _, m := range msgs {
		e := wire.GetEncoder()
		if err := wire.EncodeFrame(e, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := wire.DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\ngot  %#v\nwant %#v", m, got, m)
		}
		wire.PutEncoder(e)
	}
}
