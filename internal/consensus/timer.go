package consensus

import (
	"sync"
	"time"
)

// LoopTimer is a resettable one-shot timer for single-goroutine event
// loops. Unlike a bare time.Timer it is safe to reset or stop without the
// drain dance: a tick from a superseded arm is filtered by generation
// count, so after Reset the channel can only ever carry the fresh arm's
// tick.
type LoopTimer struct {
	mu    sync.Mutex
	c     chan struct{}
	gen   int
	armed bool
	t     *time.Timer
}

// NewLoopTimer returns a stopped timer.
func NewLoopTimer() *LoopTimer {
	return &LoopTimer{c: make(chan struct{}, 1)}
}

// C returns the tick channel. It fires at most once per Reset.
func (lt *LoopTimer) C() <-chan struct{} { return lt.c }

// Reset (re)arms the timer to fire after d, cancelling any earlier arm.
// Only the owning goroutine may call Reset/Stop.
func (lt *LoopTimer) Reset(d time.Duration) {
	lt.mu.Lock()
	lt.gen++
	gen := lt.gen
	lt.armed = true
	if lt.t != nil {
		lt.t.Stop()
	}
	// Drain a stale tick under the lock: any superseded fire either
	// completed its send before we got here (drained now) or is blocked on
	// the lock and will see the bumped generation and discard itself.
	select {
	case <-lt.c:
	default:
	}
	lt.mu.Unlock()
	lt.t = time.AfterFunc(d, func() {
		lt.mu.Lock()
		defer lt.mu.Unlock()
		if gen != lt.gen {
			return // superseded by a later Reset/Stop
		}
		lt.armed = false
		select {
		case lt.c <- struct{}{}:
		default:
		}
	})
}

// Ensure arms the timer to fire after d only when it is not already
// counting down and no tick is pending. Unlike Reset it never pushes an
// existing deadline out — callers reacting to a stream of arriving work
// use it so that steady traffic cannot indefinitely postpone the fire.
func (lt *LoopTimer) Ensure(d time.Duration) {
	if lt.Armed() {
		return
	}
	lt.Reset(d)
}

// Armed reports whether the timer is counting down or holds an
// undelivered tick.
func (lt *LoopTimer) Armed() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.armed || len(lt.c) > 0
}

// Stop disarms the timer and discards any pending tick.
func (lt *LoopTimer) Stop() {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.gen++
	lt.armed = false
	if lt.t != nil {
		lt.t.Stop()
	}
	select {
	case <-lt.c:
	default:
	}
}
