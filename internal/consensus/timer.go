package consensus

import "time"

// LoopTimer is a resettable one-shot timer for single-goroutine event
// loops. Unlike a bare time.Timer it is safe to reset or stop without the
// drain dance, because the owner only observes C from the same goroutine
// that resets it: a stale tick is filtered by generation count.
type LoopTimer struct {
	c   chan struct{}
	gen int
	t   *time.Timer
}

// NewLoopTimer returns a stopped timer.
func NewLoopTimer() *LoopTimer {
	return &LoopTimer{c: make(chan struct{}, 1)}
}

// C returns the tick channel. It fires at most once per Reset.
func (lt *LoopTimer) C() <-chan struct{} { return lt.c }

// Reset (re)arms the timer to fire after d, cancelling any earlier arm.
func (lt *LoopTimer) Reset(d time.Duration) {
	lt.gen++
	gen := lt.gen
	if lt.t != nil {
		lt.t.Stop()
	}
	// Drain a stale tick so the next fire is the fresh one.
	select {
	case <-lt.c:
	default:
	}
	lt.t = time.AfterFunc(d, func() {
		// A tick from a superseded generation may still race in here;
		// the buffered channel holds at most one tick and the loop treats
		// any tick as "check timeouts now", so over-delivery is harmless.
		_ = gen
		select {
		case lt.c <- struct{}{}:
		default:
		}
	})
}

// Stop disarms the timer and discards any pending tick.
func (lt *LoopTimer) Stop() {
	lt.gen++
	if lt.t != nil {
		lt.t.Stop()
	}
	select {
	case <-lt.c:
	default:
	}
}
