package paxos

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/types"
)

func cluster(t *testing.T, n int, opts ...network.Option) (*network.Network, []*Replica) {
	t.Helper()
	net := network.New(opts...)
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 100 * time.Millisecond,
		})
	}
	for _, r := range reps {
		r.Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})
	return net, reps
}

func val(i int) (string, types.Hash) {
	v := fmt.Sprintf("px-%d", i)
	return v, types.HashBytes([]byte(v))
}

func TestBasicCommit(t *testing.T) {
	_, reps := cluster(t, 3)
	const k = 10
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%3].Submit(v, d)
	}
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 5*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d learned %d/%d", i, len(ds), k)
		}
	}
}

func TestAgreementAcrossReplicas(t *testing.T) {
	_, reps := cluster(t, 5)
	const k = 25
	for i := 0; i < k; i++ {
		v, d := val(i)
		reps[i%5].Submit(v, d)
	}
	var ref []consensus.Decision
	for i, r := range reps {
		ds := consensus.WaitDecisions(r.Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d learned %d/%d", i, len(ds), k)
		}
		if ref == nil {
			ref = ds
			continue
		}
		for j := range ds {
			if ds[j].Digest != ref[j].Digest {
				t.Fatalf("replica %d seq %d order mismatch", i, j+1)
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	_, reps := cluster(t, 5)
	v0, d0 := val(0)
	reps[1].Submit(v0, d0)
	for i, r := range reps {
		if len(consensus.WaitDecisions(r.Decisions(), 1, 5*time.Second)) != 1 {
			t.Fatalf("replica %d missed initial decision", i)
		}
	}
	// Node 0 campaigns first, so it is the initial leader. Kill it.
	reps[0].Stop()
	const k = 5
	for i := 1; i <= k; i++ {
		v, d := val(i)
		reps[1+i%4].Submit(v, d)
	}
	for i := 1; i < 5; i++ {
		ds := consensus.WaitDecisions(reps[i].Decisions(), k, 10*time.Second)
		if len(ds) != k {
			t.Fatalf("replica %d learned %d/%d after failover", i, len(ds), k)
		}
	}
}

func TestDuplicateSubmitOnce(t *testing.T) {
	_, reps := cluster(t, 3)
	v, d := val(0)
	for i := 0; i < 3; i++ {
		reps[0].Submit(v, d)
		reps[2].Submit(v, d)
	}
	ds := consensus.WaitDecisions(reps[1].Decisions(), 1, 5*time.Second)
	if len(ds) != 1 {
		t.Fatalf("learned %d", len(ds))
	}
	extra := consensus.WaitDecisions(reps[1].Decisions(), 1, 400*time.Millisecond)
	if len(extra) != 0 {
		t.Fatalf("duplicate chosen: %v", extra)
	}
}

func TestSingleNode(t *testing.T) {
	_, reps := cluster(t, 1)
	v, d := val(0)
	reps[0].Submit(v, d)
	ds := consensus.WaitDecisions(reps[0].Decisions(), 1, 3*time.Second)
	if len(ds) != 1 || ds[0].Digest != d {
		t.Fatalf("single-node: %v", ds)
	}
}

func TestBallotEncoding(t *testing.T) {
	b := makeBallot(7, types.NodeID(3))
	if ballotNode(b) != 3 {
		t.Fatalf("node = %v", ballotNode(b))
	}
	if makeBallot(8, 0) <= makeBallot(7, 65535) {
		t.Fatal("higher counter does not dominate")
	}
	if makeBallot(7, 2) <= makeBallot(7, 1) {
		t.Fatal("node id does not break ties")
	}
}

// TestCrashRecoveryCatchUp crash-stops a follower, runs a workload it never
// sees, then rejoins a fresh incarnation on the same network and asserts it
// replays the complete decision log (leader heartbeats carry the applied
// watermark; the laggard requests a decide replay).
func TestCrashRecoveryCatchUp(t *testing.T) {
	const n = 3
	net := network.New()
	keys := crypto.NewKeyring(n)
	nodes := make([]types.NodeID, n)
	for i := range nodes {
		nodes[i] = types.NodeID(i)
	}
	mk := func(i int) *Replica {
		return New(consensus.Config{
			Self: types.NodeID(i), Nodes: nodes, Net: net, Keys: keys,
			Timeout: 100 * time.Millisecond,
		})
	}
	reps := make([]*Replica, n)
	for i := range reps {
		reps[i] = mk(i)
		reps[i].Start()
	}
	t.Cleanup(func() {
		for _, r := range reps {
			r.Stop()
		}
	})

	submit := func(i int) {
		v, d := val(i)
		reps[0].Submit(v, d)
	}
	const pre = 4
	for i := 0; i < pre; i++ {
		submit(i)
	}
	ref := consensus.WaitDecisions(reps[0].Decisions(), pre, 10*time.Second)
	for i := 1; i < n; i++ {
		if got := len(consensus.WaitDecisions(reps[i].Decisions(), pre, 10*time.Second)); got != pre {
			t.Fatalf("replica %d learned %d/%d before crash", i, got, pre)
		}
	}

	const victim = n - 1
	net.Crash(types.NodeID(victim))
	reps[victim].Stop()

	const during = 4
	for i := pre; i < pre+during; i++ {
		submit(i)
	}
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), during, 10*time.Second)...)
	if len(ref) != pre+during {
		t.Fatalf("live cluster decided %d/%d during crash", len(ref), pre+during)
	}

	// Restart: a fresh, empty incarnation rejoins the same network.
	net.Rejoin(types.NodeID(victim))
	net.Restore(types.NodeID(victim))
	reps[victim] = mk(victim)
	reps[victim].Start()

	// One post-restart probe keeps traffic flowing while catch-up runs.
	submit(pre + during)
	const total = pre + during + 1
	ref = append(ref, consensus.WaitDecisions(reps[0].Decisions(), 1, 10*time.Second)...)
	ds := consensus.WaitDecisions(reps[victim].Decisions(), total, 20*time.Second)
	if len(ds) != total {
		t.Fatalf("restarted replica caught up %d/%d decisions", len(ds), total)
	}
	for j, dec := range ds {
		if dec.Seq != uint64(j+1) || dec.Digest != ref[j].Digest {
			t.Fatalf("restarted replica decision %d = (seq %d, %v), want (seq %d, %v)",
				j, dec.Seq, dec.Digest, ref[j].Seq, ref[j].Digest)
		}
	}
}
