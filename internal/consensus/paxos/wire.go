package paxos

import (
	"sort"

	"permchain/internal/wire"
)

// Frame codecs for every paxos message (wire tags 128–143). The
// promise's accepted-value map is serialized in ascending slot order so
// identical logical content always produces identical bytes.
var (
	prepareCodec   = wire.Register[prepare](128, putPrepare, getPrepare)
	promiseCodec   = wire.Register[promise](129, putPromise, getPromise)
	acceptCodec    = wire.Register[accept](130, putAccept, getAccept)
	acceptedCodec  = wire.Register[accepted](131, putAccepted, getAccepted)
	decideCodec    = wire.Register[decide](132, putDecide, getDecide)
	heartbeatCodec = wire.Register[heartbeat](133, putHeartbeat, getHeartbeat)
	syncReqCodec   = wire.Register[syncReq](134, putSyncReq, getSyncReq)
	forwardCodec   = wire.Register[forward](135, putForward, getForward)
)

func init() {
	wire.Intern(msgPrepare, msgPromise, msgAccept, msgAccepted,
		msgDecide, msgHeartbeat, msgForward, msgSyncReq)
}

func putPrepare(e *wire.Encoder, m *prepare) { e.U64(m.Ballot) }

func getPrepare(d *wire.Decoder, m *prepare) { m.Ballot = d.U64() }

func putAcceptedVal(e *wire.Encoder, v *acceptedVal) {
	e.U64(v.Ballot)
	e.Hash(v.Digest)
	e.Any(v.Value)
}

func getAcceptedVal(d *wire.Decoder, v *acceptedVal) {
	v.Ballot = d.U64()
	v.Digest = d.Hash()
	v.Value = d.Any()
}

func putPromise(e *wire.Encoder, m *promise) {
	e.U64(m.Ballot)
	e.U32(uint32(len(m.Accepted)))
	slots := make([]uint64, 0, len(m.Accepted))
	for s := range m.Accepted {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	for _, s := range slots {
		v := m.Accepted[s]
		e.U64(s)
		putAcceptedVal(e, &v)
	}
}

func getPromise(d *wire.Decoder, m *promise) {
	m.Ballot = d.U64()
	n := d.Count(8)
	m.Accepted = nil
	if n > 0 && d.Err() == nil {
		m.Accepted = make(map[uint64]acceptedVal, n)
	}
	for i := 0; i < n && d.Err() == nil; i++ {
		s := d.U64()
		var v acceptedVal
		getAcceptedVal(d, &v)
		m.Accepted[s] = v
	}
}

func putAccept(e *wire.Encoder, m *accept) {
	e.U64(m.Ballot)
	e.U64(m.Slot)
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getAccept(d *wire.Decoder, m *accept) {
	m.Ballot = d.U64()
	m.Slot = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putAccepted(e *wire.Encoder, m *accepted) {
	e.U64(m.Ballot)
	e.U64(m.Slot)
}

func getAccepted(d *wire.Decoder, m *accepted) {
	m.Ballot = d.U64()
	m.Slot = d.U64()
}

func putDecide(e *wire.Encoder, m *decide) {
	e.U64(m.Slot)
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getDecide(d *wire.Decoder, m *decide) {
	m.Slot = d.U64()
	m.Digest = d.Hash()
	m.Value = d.Any()
}

func putHeartbeat(e *wire.Encoder, m *heartbeat) {
	e.U64(m.Ballot)
	e.U64(m.Applied)
}

func getHeartbeat(d *wire.Decoder, m *heartbeat) {
	m.Ballot = d.U64()
	m.Applied = d.U64()
}

func putSyncReq(e *wire.Encoder, m *syncReq) { e.U64(m.From) }

func getSyncReq(d *wire.Decoder, m *syncReq) { m.From = d.U64() }

func putForward(e *wire.Encoder, m *forward) {
	e.Hash(m.Digest)
	e.Any(m.Value)
}

func getForward(d *wire.Decoder, m *forward) {
	m.Digest = d.Hash()
	m.Value = d.Any()
}
