package paxos

import (
	"reflect"
	"testing"

	"permchain/internal/types"
	"permchain/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	dig := types.HashBytes([]byte("value"))
	msgs := []any{
		prepare{Ballot: 3},
		promise{Ballot: 3, Accepted: map[uint64]acceptedVal{
			2: {Ballot: 1, Digest: dig, Value: "payload"},
			7: {Ballot: 2, Digest: dig, Value: "other"},
		}},
		promise{Ballot: 4},
		accept{Ballot: 3, Slot: 2, Digest: dig, Value: "payload"},
		accepted{Ballot: 3, Slot: 2},
		decide{Slot: 2, Digest: dig, Value: "payload"},
		heartbeat{Ballot: 3, Applied: 9},
		syncReq{From: 4},
		forward{Digest: dig, Value: "payload"},
	}
	for _, m := range msgs {
		e := wire.GetEncoder()
		if err := wire.EncodeFrame(e, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		got, err := wire.DecodeFrame(e.Frame())
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("round trip %T:\ngot  %#v\nwant %#v", m, got, m)
		}
		wire.PutEncoder(e)
	}
}

// TestPromiseDeterministic: map-valued promises must encode in sorted
// slot order, so identical content produces identical bytes.
func TestPromiseDeterministic(t *testing.T) {
	m := promise{Ballot: 1, Accepted: map[uint64]acceptedVal{}}
	for s := uint64(0); s < 32; s++ {
		m.Accepted[s] = acceptedVal{Ballot: s, Digest: types.HashBytes([]byte{byte(s)})}
	}
	e1, e2 := &wire.Encoder{}, &wire.Encoder{}
	promiseCodec.EncodeFrame(e1, &m)
	promiseCodec.EncodeFrame(e2, &m)
	if string(e1.Frame()) != string(e2.Frame()) {
		t.Fatal("promise encoding is not deterministic")
	}
}
