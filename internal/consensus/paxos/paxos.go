// Package paxos implements Multi-Paxos (Lamport, "Paxos Made Simple"),
// the classic crash-fault-tolerant protocol the tutorial cites as the
// other non-Byzantine ordering option (§2.2). A distinguished proposer
// wins a ballot with phase 1 (prepare/promise) once, then drives one
// phase 2 (accept/accepted) round per log slot; learners apply decided
// slots in order.
//
// Compared to Raft the structure is slot-oriented rather than
// log-matching-oriented: a new leader must explicitly re-propose the
// highest-ballot accepted value per slot and fill gaps with no-ops.
package paxos

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/types"
)

const (
	msgPrepare   = "paxos/prepare"
	msgPromise   = "paxos/promise"
	msgAccept    = "paxos/accept"
	msgAccepted  = "paxos/accepted"
	msgDecide    = "paxos/decide"
	msgHeartbeat = "paxos/heartbeat"
	msgForward   = "paxos/forward"
	msgSyncReq   = "paxos/syncreq"
)

// syncBatch bounds how many decided slots one sync request replays.
const syncBatch = 256

// ballot numbers are globally ordered and proposer-unique: counter in the
// high bits, node id in the low bits.
func makeBallot(counter uint64, id types.NodeID) uint64 {
	return counter<<16 | uint64(uint16(id))
}

func ballotNode(b uint64) types.NodeID { return types.NodeID(uint16(b)) }

type acceptedVal struct {
	Ballot uint64
	Digest types.Hash
	Value  any
}

type prepare struct {
	Ballot uint64
}

type promise struct {
	Ballot   uint64
	Accepted map[uint64]acceptedVal // slot → highest accepted
}

type accept struct {
	Ballot uint64
	Slot   uint64
	Digest types.Hash
	Value  any
}

type accepted struct {
	Ballot uint64
	Slot   uint64
}

type decide struct {
	Slot   uint64
	Digest types.Hash
	Value  any
}

type heartbeat struct {
	Ballot uint64
	// Applied is the leader's contiguous application point; a follower
	// further behind requests a replay of the decided slots it is missing.
	Applied uint64
}

// syncReq asks the leader to re-send decide messages starting at From.
type syncReq struct {
	From uint64
}

type forward struct {
	Digest types.Hash
	Value  any
}

// Replica is one Multi-Paxos node playing proposer, acceptor and learner.
type Replica struct {
	cfg consensus.Config
	ep  *network.Endpoint
	rng *rand.Rand

	decCh    chan consensus.Decision
	submitCh chan forward
	stopCh   chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	// Acceptor state.
	promised uint64
	accepted map[uint64]acceptedVal

	// Proposer state.
	leading      bool
	isLeader     atomic.Bool // mirrors leading, for cross-goroutine probes
	ballot       uint64      // my current ballot when leading or campaigning
	counter      uint64
	promises     map[types.NodeID]promise
	nextSlot     uint64
	acceptVotes  map[uint64]map[types.NodeID]bool // slot → voters
	inFlight     map[uint64]acceptedVal           // slot → proposal
	proposedDig  map[types.Hash]bool              // digests assigned a slot
	leaderBallot uint64                           // highest leader heartbeat seen

	// Learner state.
	decided    map[uint64]acceptedVal
	applied    uint64
	appliedSeq uint64
	chosen     map[types.Hash]bool

	pending map[types.Hash]any
	timer   *consensus.LoopTimer
}

// New creates a Paxos replica. Call Start to launch it.
func New(cfg consensus.Config) *Replica {
	cfg = cfg.Defaulted()
	return &Replica{
		cfg:         cfg,
		ep:          cfg.Net.Join(cfg.Self),
		rng:         rand.New(rand.NewSource(int64(cfg.Self)*104729 + 3)),
		decCh:       make(chan consensus.Decision, 65536),
		submitCh:    make(chan forward, 65536),
		stopCh:      make(chan struct{}),
		done:        make(chan struct{}),
		accepted:    map[uint64]acceptedVal{},
		promises:    map[types.NodeID]promise{},
		nextSlot:    1,
		acceptVotes: map[uint64]map[types.NodeID]bool{},
		inFlight:    map[uint64]acceptedVal{},
		proposedDig: map[types.Hash]bool{},
		decided:     map[uint64]acceptedVal{},
		chosen:      map[types.Hash]bool{},
		pending:     map[types.Hash]any{},
		timer:       consensus.NewLoopTimer(),
	}
}

// ID implements consensus.Replica.
func (r *Replica) ID() types.NodeID { return r.cfg.Self }

// Decisions implements consensus.Replica.
func (r *Replica) Decisions() <-chan consensus.Decision { return r.decCh }

// Start implements consensus.Replica.
func (r *Replica) Start() { go r.loop() }

// Stop implements consensus.Replica.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	<-r.done
}

// IsLeader reports whether this replica currently leads (won phase 1 and
// has not observed a higher ballot). Safe from any goroutine.
func (r *Replica) IsLeader() bool { return r.isLeader.Load() }

// setLeading flips proposer leadership, keeping the atomic mirror in sync.
func (r *Replica) setLeading(v bool) {
	r.leading = v
	r.isLeader.Store(v)
}

// Submit implements consensus.Replica.
func (r *Replica) Submit(value any, digest types.Hash) {
	r.cfg.Obs.Mark(digest, 0, obs.PhaseSubmit)
	select {
	case r.submitCh <- forward{Digest: digest, Value: value}:
	case <-r.stopCh:
	}
}

func (r *Replica) loop() {
	defer close(r.done)
	defer r.timer.Stop()
	// Node 0 campaigns immediately so quiet clusters have a leader fast;
	// everyone else waits a randomized timeout first.
	if r.cfg.Self == r.cfg.Nodes[0] {
		r.campaign()
	} else {
		r.resetFollowerTimer()
	}
	for {
		select {
		case <-r.stopCh:
			return
		case f := <-r.submitCh:
			r.onSubmit(f)
		case m := <-r.ep.Inbox():
			r.onMessage(m)
		case <-r.timer.C():
			r.onTimeout()
		}
	}
}

func (r *Replica) resetFollowerTimer() {
	base := r.cfg.Timeout
	r.timer.Reset(base + time.Duration(r.rng.Int63n(int64(base))))
}

func (r *Replica) onTimeout() {
	if r.leading {
		r.ep.Multicast(r.cfg.Nodes, msgHeartbeat, heartbeat{Ballot: r.ballot, Applied: r.applied})
		r.timer.Reset(r.cfg.Timeout / 5)
		return
	}
	r.campaign()
}

// campaign starts phase 1 with a ballot higher than anything seen.
func (r *Replica) campaign() {
	r.cfg.Obs.Inc("paxos/campaigns")
	r.cfg.Obs.NoteViewChange()
	r.counter++
	for makeBallot(r.counter, r.cfg.Self) <= r.promised ||
		makeBallot(r.counter, r.cfg.Self) <= r.leaderBallot {
		r.counter++
	}
	r.ballot = makeBallot(r.counter, r.cfg.Self)
	r.cfg.Obs.SetGauge("paxos/ballot", int64(r.ballot))
	r.cfg.Obs.Logger("paxos").Info("campaign started",
		"node", int(r.cfg.Self), "ballot", r.ballot)
	r.setLeading(false)
	r.promises = map[types.NodeID]promise{}
	r.proposedDig = map[types.Hash]bool{}
	p := prepare{Ballot: r.ballot}
	r.ep.Multicast(r.cfg.Nodes, msgPrepare, p)
	r.onPrepare(r.cfg.Self, p)
	r.resetFollowerTimer()
}

func (r *Replica) onSubmit(f forward) {
	if r.chosen[f.Digest] {
		return
	}
	r.pending[f.Digest] = f.Value
	// Dispatch only the new value; a full pending sweep per submission
	// would be quadratic.
	if r.leading {
		r.proposeValue(f.Digest, f.Value)
		return
	}
	if r.leaderBallot != 0 {
		r.ep.Send(ballotNode(r.leaderBallot), msgForward, forward{Digest: f.Digest, Value: f.Value})
	}
}

func (r *Replica) dispatchPending() {
	if len(r.pending) == 0 {
		return
	}
	if r.leading {
		for d, v := range r.pending {
			r.proposeValue(d, v)
		}
		return
	}
	if r.leaderBallot != 0 {
		to := ballotNode(r.leaderBallot)
		for d, v := range r.pending {
			r.ep.Send(to, msgForward, forward{Digest: d, Value: v})
		}
	}
}

// proposeValue runs phase 2 for a fresh value in the next free slot.
func (r *Replica) proposeValue(digest types.Hash, value any) {
	if r.proposedDig[digest] || r.chosen[digest] {
		return
	}
	r.proposedDig[digest] = true
	slot := r.nextSlot
	r.nextSlot++
	r.phase2(slot, digest, value)
}

func (r *Replica) phase2(slot uint64, digest types.Hash, value any) {
	if !digest.IsZero() { // no-op gap fills have no lifecycle
		r.cfg.Obs.Mark(digest, slot, obs.PhasePropose)
	}
	r.inFlight[slot] = acceptedVal{Ballot: r.ballot, Digest: digest, Value: value}
	r.acceptVotes[slot] = map[types.NodeID]bool{}
	a := accept{Ballot: r.ballot, Slot: slot, Digest: digest, Value: value}
	r.ep.Multicast(r.cfg.Nodes, msgAccept, a)
	r.onAccept(r.cfg.Self, a)
}

func (r *Replica) onMessage(m network.Message) {
	if !r.cfg.IsMember(m.From) {
		return // not part of this replica group
	}
	switch m.Type {
	case msgForward:
		f, ok := m.Payload.(forward)
		if !ok {
			return
		}
		r.onSubmit(f)
	case msgPrepare:
		p, ok := m.Payload.(prepare)
		if !ok {
			return
		}
		r.onPrepare(m.From, p)
	case msgPromise:
		p, ok := m.Payload.(promise)
		if !ok {
			return
		}
		r.onPromise(m.From, p)
	case msgAccept:
		a, ok := m.Payload.(accept)
		if !ok {
			return
		}
		r.onAccept(m.From, a)
	case msgAccepted:
		a, ok := m.Payload.(accepted)
		if !ok {
			return
		}
		r.onAccepted(m.From, a)
	case msgDecide:
		d, ok := m.Payload.(decide)
		if !ok {
			return
		}
		r.learn(d.Slot, acceptedVal{Digest: d.Digest, Value: d.Value})
	case msgHeartbeat:
		hb, ok := m.Payload.(heartbeat)
		if !ok {
			return
		}
		if hb.Ballot >= r.leaderBallot {
			r.leaderBallot = hb.Ballot
			if ballotNode(hb.Ballot) != r.cfg.Self {
				r.setLeading(false)
				r.resetFollowerTimer()
				r.dispatchPending()
			}
		}
		// Crash recovery: the leader has applied past us, so decide
		// traffic we missed exists — ask for a replay. Heartbeats repeat
		// every Timeout/5, re-triggering until fully caught up.
		if hb.Applied > r.applied {
			r.cfg.Obs.Inc("paxos/sync_fetches")
			r.ep.Send(m.From, msgSyncReq, syncReq{From: r.applied + 1})
		}
	case msgSyncReq:
		q, ok := m.Payload.(syncReq)
		if !ok {
			return
		}
		// Replay a bounded window of decided slots. Slots up to r.applied
		// are contiguous in r.decided, so every slot in range answers.
		end := q.From + syncBatch - 1
		if end > r.applied {
			end = r.applied
		}
		for slot := q.From; slot <= end; slot++ {
			if v, ok := r.decided[slot]; ok {
				r.ep.Send(m.From, msgDecide, decide{Slot: slot, Digest: v.Digest, Value: v.Value})
			}
		}
	}
}

func (r *Replica) onPrepare(from types.NodeID, p prepare) {
	if p.Ballot <= r.promised {
		return // stale campaign; no NACK needed, the campaigner retries
	}
	r.promised = p.Ballot
	// Report accepted values for undecided slots so the new leader can
	// re-propose them.
	acc := map[uint64]acceptedVal{}
	for slot, v := range r.accepted {
		if _, done := r.decided[slot]; !done {
			acc[slot] = v
		}
	}
	if from == r.cfg.Self {
		r.onPromise(r.cfg.Self, promise{Ballot: p.Ballot, Accepted: acc})
		return
	}
	r.ep.Send(from, msgPromise, promise{Ballot: p.Ballot, Accepted: acc})
}

func (r *Replica) onPromise(from types.NodeID, p promise) {
	if p.Ballot != r.ballot || r.leading {
		return
	}
	r.promises[from] = p
	if len(r.promises) < r.cfg.Majority() {
		return
	}
	// Won phase 1: become leader.
	r.setLeading(true)
	r.leaderBallot = r.ballot
	r.ep.Multicast(r.cfg.Nodes, msgHeartbeat, heartbeat{Ballot: r.ballot, Applied: r.applied})
	r.timer.Reset(r.cfg.Timeout / 5)

	// Re-propose the highest-ballot accepted value per open slot and
	// advance nextSlot past everything seen.
	repropose := map[uint64]acceptedVal{}
	maxSlot := r.applied
	for _, pr := range r.promises {
		for slot, v := range pr.Accepted {
			if cur, ok := repropose[slot]; !ok || v.Ballot > cur.Ballot {
				repropose[slot] = v
			}
			if slot > maxSlot {
				maxSlot = slot
			}
		}
	}
	for slot := range r.decided {
		if slot > maxSlot {
			maxSlot = slot
		}
	}
	if r.nextSlot <= maxSlot {
		r.nextSlot = maxSlot + 1
	}
	for slot, v := range repropose {
		if _, done := r.decided[slot]; done {
			continue
		}
		r.phase2(slot, v.Digest, v.Value)
	}
	// Fill gaps below maxSlot with no-ops so learners can advance.
	for slot := r.applied + 1; slot <= maxSlot; slot++ {
		if _, done := r.decided[slot]; done {
			continue
		}
		if _, open := repropose[slot]; open {
			continue
		}
		r.phase2(slot, types.ZeroHash, nil)
	}
	r.dispatchPending()
}

func (r *Replica) onAccept(from types.NodeID, a accept) {
	if a.Ballot < r.promised {
		return
	}
	r.promised = a.Ballot
	r.accepted[a.Slot] = acceptedVal{Ballot: a.Ballot, Digest: a.Digest, Value: a.Value}
	if leaderID := ballotNode(a.Ballot); leaderID != r.cfg.Self {
		// Track the active leader for forwarding.
		if a.Ballot >= r.leaderBallot {
			r.leaderBallot = a.Ballot
			r.setLeading(false)
			r.resetFollowerTimer()
		}
		r.ep.Send(from, msgAccepted, accepted{Ballot: a.Ballot, Slot: a.Slot})
		return
	}
	r.onAccepted(r.cfg.Self, accepted{Ballot: a.Ballot, Slot: a.Slot})
}

func (r *Replica) onAccepted(from types.NodeID, a accepted) {
	if !r.leading || a.Ballot != r.ballot {
		return
	}
	votes, ok := r.acceptVotes[a.Slot]
	if !ok {
		return
	}
	votes[from] = true
	if len(votes) < r.cfg.Majority() {
		return
	}
	prop, ok := r.inFlight[a.Slot]
	if !ok {
		return
	}
	delete(r.inFlight, a.Slot)
	delete(r.acceptVotes, a.Slot)
	r.ep.Multicast(r.cfg.Nodes, msgDecide, decide{Slot: a.Slot, Digest: prop.Digest, Value: prop.Value})
	r.learn(a.Slot, prop)
}

func (r *Replica) learn(slot uint64, v acceptedVal) {
	if _, done := r.decided[slot]; done {
		return
	}
	r.decided[slot] = v
	for {
		next, ok := r.decided[r.applied+1]
		if !ok {
			break
		}
		r.applied++
		delete(r.pending, next.Digest)
		if next.Digest.IsZero() {
			continue
		}
		r.chosen[next.Digest] = true
		r.appliedSeq++
		r.cfg.Obs.MarkLatency("paxos/commit_latency", next.Digest, r.appliedSeq, obs.PhasePropose, obs.PhaseCommit)
		r.cfg.Obs.Mark(next.Digest, r.appliedSeq, obs.PhaseApply)
		r.cfg.Obs.Inc("paxos/decisions")
		r.decCh <- consensus.Decision{Seq: r.appliedSeq, Digest: next.Digest, Value: next.Value, Node: r.cfg.Self}
	}
}
