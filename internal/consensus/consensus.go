// Package consensus defines the interface shared by every ordering
// protocol in permchain (§2.2): replicas agree on a totally ordered
// sequence of opaque values. Blockchain layers above decide what the
// values are (usually blocks) and what to do with them.
//
// Six protocols implement this interface — pbft, raft, paxos, tendermint,
// hotstuff, and ibft — so architectures (§2.3.3) and sharding schemes
// (§2.3.4) can swap the ordering protocol freely, which is exactly the
// modularity the tutorial attributes to permissioned systems.
package consensus

import (
	"time"

	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

// Decision is one committed slot in the total order, as observed by one
// replica. Every correct replica emits the same (Seq, Digest) sequence.
type Decision struct {
	Seq    uint64
	Digest types.Hash
	Value  any
	Node   types.NodeID
}

// Replica is one consensus participant. Implementations run a single
// event-loop goroutine between Start and Stop; all exported methods are
// safe to call from other goroutines.
type Replica interface {
	// ID returns the replica's node id.
	ID() types.NodeID
	// Start launches the event loop.
	Start()
	// Stop terminates the event loop. It is idempotent.
	Stop()
	// Submit hands a value to the protocol for ordering. Any replica
	// accepts a submission; non-leaders forward it.
	Submit(value any, digest types.Hash)
	// Decisions streams committed slots in sequence order.
	Decisions() <-chan Decision
}

// Config carries what every protocol needs. Protocol packages embed it in
// their own config types when they need more.
type Config struct {
	// Self is this replica's id; Nodes lists all replicas (including Self).
	Self  types.NodeID
	Nodes []types.NodeID
	// Net is the shared transport; Keys authenticates messages.
	Net  *network.Network
	Keys *crypto.Keyring
	// Timeout is the failure-detection timeout (view change, election,
	// round change). Zero selects a protocol-appropriate default.
	Timeout time.Duration
	// DisableSig skips message authentication, isolating protocol logic
	// cost in microbenchmarks. Deployments keep signatures on.
	DisableSig bool
	// Obs, when non-nil, receives protocol metrics (commit-latency
	// histograms, view-change/round counters, state-transfer fetches) and
	// lifecycle span marks. May be shared by every replica in a cluster;
	// nil disables instrumentation with no hot-path branching (all *Obs
	// methods are nil-safe).
	Obs *obs.Obs
	// ByzQuorumOverride, when positive, replaces the 2f+1 quorum size.
	// AHL-style attested committees (§2.3.4) use it to run n = 2f+1 nodes
	// with quorum f+1: trusted hardware makes equivocation impossible
	// (network.Attest enforces this in simulation), which is what lets the
	// committee shrink below 3f+1.
	ByzQuorumOverride int
	// AggregateVotes switches the BFT vote phases (PBFT prepare/commit,
	// HotStuff votes) from counted per-replica signatures to Schnorr quorum
	// certificates (internal/quorumcert): replicas send partial signatures
	// to the leader/primary, which broadcasts one constant-size cert per
	// phase. Off by default; counted voting (QuorumTracker, per-signature
	// QCs) remains the fallback path.
	AggregateVotes bool
	// VoteKeys optionally shares one Schnorr key set across all replicas of
	// a cluster in aggregate mode (saves re-deriving n keypairs per
	// replica); nil lets each replica derive the deterministic set itself.
	// Ignored unless AggregateVotes is set.
	VoteKeys *quorumcert.Keys
	// BatchVotes coalesces outbound vote/partial traffic per destination
	// through a network.VoteBatcher: one envelope per peer per flush
	// instead of one message per vote.
	BatchVotes bool
}

// VoteKeySet returns the Schnorr key material for aggregate mode: the
// shared VoteKeys when provided, otherwise a freshly derived deterministic
// set. Under DisableSig it returns nil — certificates degrade to counted
// signer bitmaps, mirroring SignPart/VerifyPart.
func (c Config) VoteKeySet() *quorumcert.Keys {
	if c.DisableSig {
		return nil
	}
	if c.VoteKeys != nil {
		return c.VoteKeys
	}
	return quorumcert.NewKeys()
}

// Defaulted returns cfg with zero fields replaced by defaults.
func (c Config) Defaulted() Config {
	if c.Timeout == 0 {
		c.Timeout = 200 * time.Millisecond
	}
	return c
}

// N returns the cluster size.
func (c Config) N() int { return len(c.Nodes) }

// IsMember reports whether id belongs to this replica group. Protocols
// drop messages from non-members: on a shared transport, traffic from
// other groups must not contaminate quorums.
func (c Config) IsMember(id types.NodeID) bool {
	for _, n := range c.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// ByzQuorum returns the Byzantine quorum 2f+1 where f = (n-1)/3, unless
// overridden for attested committees.
func (c Config) ByzQuorum() int {
	if c.ByzQuorumOverride > 0 {
		return c.ByzQuorumOverride
	}
	return 2*c.MaxByzFaults() + 1
}

// MaxByzFaults returns f = (n-1)/3, the Byzantine faults n nodes tolerate.
func (c Config) MaxByzFaults() int { return (c.N() - 1) / 3 }

// Majority returns the crash-fault quorum floor(n/2)+1.
func (c Config) Majority() int { return c.N()/2 + 1 }

// SignPart authenticates a protocol message: it signs the hash of the
// given parts as node Self. Returns nil when signatures are disabled.
func (c Config) SignPart(parts ...[]byte) []byte {
	if c.DisableSig {
		return nil
	}
	h := types.HashConcat(parts...)
	return c.Keys.Sign(c.Self, h[:])
}

// VerifyPart checks a signature produced by SignPart as node from.
func (c Config) VerifyPart(from types.NodeID, sig []byte, parts ...[]byte) bool {
	if c.DisableSig {
		return true
	}
	h := types.HashConcat(parts...)
	return c.Keys.Verify(from, h[:], sig)
}

// U64 renders a uint64 for signing transcripts.
func U64(v uint64) []byte {
	return []byte{
		byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
		byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v),
	}
}

// QuorumTracker counts distinct voters per slot key (e.g. "(view, seq)"),
// split by the digest each voter endorsed. A voter's first vote at a key
// pins it: a second vote from the same voter for a different digest is
// equivocation and is rejected rather than counted toward a second quorum,
// so one Byzantine voter can never contribute to two conflicting quorums at
// the same key.
type QuorumTracker struct {
	votes  map[string]map[types.NodeID]types.Hash
	counts map[string]map[types.Hash]int
}

// NewQuorumTracker creates an empty tracker.
func NewQuorumTracker() *QuorumTracker {
	return &QuorumTracker{
		votes:  map[string]map[types.NodeID]types.Hash{},
		counts: map[string]map[types.Hash]int{},
	}
}

// Add records voter's vote for digest at key and returns the number of
// distinct voters for (key, digest) afterward. Duplicate votes are no-ops;
// an equivocating vote (same voter, same key, different digest) is rejected
// — the first vote stands and the count for the new digest is unchanged.
func (q *QuorumTracker) Add(key string, voter types.NodeID, digest types.Hash) int {
	m, ok := q.votes[key]
	if !ok {
		m = map[types.NodeID]types.Hash{}
		q.votes[key] = m
	}
	if _, voted := m[voter]; voted {
		return q.counts[key][digest] // duplicate or equivocation: first vote wins
	}
	m[voter] = digest
	c, ok := q.counts[key]
	if !ok {
		c = map[types.Hash]int{}
		q.counts[key] = c
	}
	c[digest]++
	return c[digest]
}

// Count returns the number of distinct voters recorded for digest at key.
func (q *QuorumTracker) Count(key string, digest types.Hash) int {
	return q.counts[key][digest]
}

// Forget discards all state for key.
func (q *QuorumTracker) Forget(key string) {
	delete(q.votes, key)
	delete(q.counts, key)
}

// WaitDecisions collects n decisions from ch or fails after timeout,
// returning what arrived. Shared by protocol tests and benchmarks.
func WaitDecisions(ch <-chan Decision, n int, timeout time.Duration) []Decision {
	out := make([]Decision, 0, n)
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case d := <-ch:
			out = append(out, d)
		case <-deadline:
			return out
		}
	}
	return out
}
