package bench

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"time"

	"permchain/internal/confidential/caper"
	"permchain/internal/confidential/channels"
	"permchain/internal/confidential/pdc"
	"permchain/internal/types"
	"permchain/internal/verify/confidentialtx"
	"permchain/internal/verify/separ"
)

// E4Confidentiality reproduces the §2.3.1 Discussion comparison: what
// each confidentiality technique costs in storage on irrelevant parties
// and in transaction latency.
//
// Three enterprises each run `internalPerEnt` internal transactions plus
// `cross` cross-enterprise transactions system-wide, under (a) Caper
// views, (b) multi-channel Fabric (one channel per enterprise plus a
// shared channel), and (c) a single channel with a private data
// collection per enterprise.
func E4Confidentiality(internalPerEnt, cross int) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "confidentiality techniques: storage on irrelevant parties & latency",
		Claim:   "view-based (Caper, channels) stores nothing irrelevant but pays consensus across views for public txs; cryptographic (PDC) leaks only hashes but replicates evidence everywhere",
		Columns: []string{"technique", "e1 stores of e2's internal data", "e1 total bytes", "internal tx latency", "cross/public tx latency"},
	}

	// ---- Caper ----------------------------------------------------------
	cnet, err := caper.NewNetwork(caper.Config{Enterprises: 3, Mode: caper.OrderingService})
	if err != nil {
		return nil, err
	}
	defer cnet.Close()
	start := time.Now()
	for e := 1; e <= 3; e++ {
		for i := 0; i < internalPerEnt; i++ {
			tx := &types.Transaction{
				ID: fmt.Sprintf("int-e%d-%d", e, i), Kind: types.TxInternal,
				Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("e%d/k%d", e, i%32), Delta: 1}},
			}
			if err := cnet.SubmitInternal(types.EnterpriseID(e), tx); err != nil {
				return nil, err
			}
		}
	}
	internalLat := time.Since(start) / time.Duration(3*internalPerEnt)
	start = time.Now()
	for i := 0; i < cross; i++ {
		tx := &types.Transaction{
			ID: fmt.Sprintf("cross-%d", i), Kind: types.TxCross,
			Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("shared/k%d", i%32), Delta: 1}},
		}
		if err := cnet.SubmitCross(tx); err != nil {
			return nil, err
		}
	}
	if !cnet.AwaitCrossCount(cross, 60*time.Second) {
		return nil, fmt.Errorf("E4: caper cross txs stalled")
	}
	crossLat := time.Since(start) / time.Duration(cross)
	// e1's view contains none of e2's internal transactions by
	// construction; measure to prove it.
	leaked := 0
	for _, v := range cnet.Enterprise(1).View().Topo() {
		if v.Tx.Kind == types.TxInternal && v.Tx.Enterprise == 2 {
			leaked++
		}
	}
	t.AddRow("Caper views", fmt.Sprintf("%d txs", leaked),
		fmt.Sprintf("%d B", cnet.ViewSize(1)), internalLat, crossLat)

	// ---- Multi-channel Fabric -------------------------------------------
	svc := channels.NewService(channels.Config{})
	defer svc.Close()
	for e := 1; e <= 3; e++ {
		if _, err := svc.CreateChannel(types.ChannelID(fmt.Sprintf("ent%d", e)), []types.EnterpriseID{types.EnterpriseID(e)}); err != nil {
			return nil, err
		}
	}
	if _, err := svc.CreateChannel("shared", []types.EnterpriseID{1, 2, 3}); err != nil {
		return nil, err
	}
	start = time.Now()
	for e := 1; e <= 3; e++ {
		ch := types.ChannelID(fmt.Sprintf("ent%d", e))
		for i := 0; i < internalPerEnt; i++ {
			tx := &types.Transaction{
				ID:  fmt.Sprintf("chint-e%d-%d", e, i),
				Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("k%d", i), Delta: 1}},
			}
			if err := svc.Submit(ch, types.EnterpriseID(e), tx); err != nil {
				return nil, err
			}
		}
	}
	for e := 1; e <= 3; e++ {
		if !svc.AwaitApplied(types.ChannelID(fmt.Sprintf("ent%d", e)), internalPerEnt, 60*time.Second) {
			return nil, fmt.Errorf("E4: channel ent%d stalled", e)
		}
	}
	chInternalLat := time.Since(start) / time.Duration(3*internalPerEnt)
	start = time.Now()
	for i := 0; i < cross; i++ {
		tx := &types.Transaction{
			ID:  fmt.Sprintf("chcross-%d", i),
			Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("s%d", i), Delta: 1}},
		}
		if err := svc.Submit("shared", types.EnterpriseID(1+i%3), tx); err != nil {
			return nil, err
		}
	}
	if !svc.AwaitApplied("shared", cross, 60*time.Second) {
		return nil, fmt.Errorf("E4: shared channel stalled")
	}
	chCrossLat := time.Since(start) / time.Duration(cross)
	// e1 never joins ent2's channel, so it stores none of its ledger.
	t.AddRow("Fabric channels", "no membership",
		fmt.Sprintf("%d B", svc.StorageFootprint(1)), chInternalLat, chCrossLat)

	// ---- Private data collections ---------------------------------------
	pch := pdc.NewChannel([]types.EnterpriseID{1, 2, 3})
	for e := 1; e <= 3; e++ {
		if _, err := pch.DefineCollection(fmt.Sprintf("col%d", e), []types.EnterpriseID{types.EnterpriseID(e)}); err != nil {
			return nil, err
		}
	}
	start = time.Now()
	for e := 1; e <= 3; e++ {
		for i := 0; i < internalPerEnt; i++ {
			tx := &types.Transaction{
				ID:  fmt.Sprintf("pdc-e%d-%d", e, i),
				Ops: []types.Op{{Code: types.OpPut, Key: fmt.Sprintf("k%d", i), Value: []byte("secret")}},
			}
			if err := pch.SubmitPrivate(fmt.Sprintf("col%d", e), types.EnterpriseID(e), tx); err != nil {
				return nil, err
			}
		}
	}
	pdcInternalLat := time.Since(start) / time.Duration(3*internalPerEnt)
	start = time.Now()
	for i := 0; i < cross; i++ {
		tx := &types.Transaction{
			ID:  fmt.Sprintf("pdcpub-%d", i),
			Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("p%d", i), Delta: 1}},
		}
		if err := pch.SubmitPublic(tx); err != nil {
			return nil, err
		}
	}
	pdcCrossLat := time.Since(start) / time.Duration(cross)
	// Every member's ledger carries every private tx's hash: e1 stores
	// evidence for all of e2's and e3's private transactions.
	t.AddRow("PDC (hash on ledger)", fmt.Sprintf("%d hash txs", 2*internalPerEnt),
		fmt.Sprintf("%d B", pch.Chain().Size()), pdcInternalLat, pdcCrossLat)

	t.Notes = append(t.Notes,
		fmt.Sprintf("3 enterprises, %d internal txs each, %d cross/public txs", internalPerEnt, cross),
		"Caper/channel cross latency includes the global consensus round; PDC private txs commit locally but replicate a hash to every member")
	return t, nil
}

// E5Verifiability reproduces the §2.3.2 Discussion comparison: ZKP-based
// verifiability (decentralized, expensive) vs token-based (needs a
// trusted authority, cheap).
func E5Verifiability(transfers, tokens int) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "verifiability: zero-knowledge proofs vs anonymous tokens",
		Claim:   "ZKPs need no trusted entity but have considerable overhead; tokens verify cheaply but require a trusted authority",
		Columns: []string{"technique", "trusted party", "prove/issue per tx", "verify per tx", "verified tx/s"},
	}

	// ---- Confidential transfers (ZKP) ------------------------------------
	ledger := confidentialtx.NewLedger()
	seed := sha256.Sum256([]byte("e5-owner"))
	priv := ed25519.NewKeyFromSeed(seed[:])
	pub := priv.Public().(ed25519.PublicKey)

	notes := make([]*confidentialtx.Note, transfers)
	for i := range notes {
		n, err := ledger.Mint(pub, priv, 100)
		if err != nil {
			return nil, err
		}
		notes[i] = n
	}
	start := time.Now()
	txs := make([]*confidentialtx.Transfer, transfers)
	for i, n := range notes {
		tr, _, err := ledger.NewTransfer([]*confidentialtx.Note{n},
			[]confidentialtx.OutputSpec{{Owner: pub, Amount: 30}, {Owner: pub, Amount: 70}})
		if err != nil {
			return nil, err
		}
		txs[i] = tr
	}
	provePer := time.Since(start) / time.Duration(transfers)
	start = time.Now()
	for _, tr := range txs {
		if err := ledger.Verify(tr); err != nil {
			return nil, err
		}
	}
	verifyDur := time.Since(start)
	verifyPer := verifyDur / time.Duration(transfers)
	t.AddRow("ZKP confidential transfer", "none", provePer, verifyPer, tps(transfers, verifyDur))

	// ---- Separ tokens -----------------------------------------------------
	authority, err := separ.NewAuthority(tokens)
	if err != nil {
		return nil, err
	}
	worker := separ.NewWorker("w")
	start = time.Now()
	if err := worker.RequestTokens(authority, "wk", tokens); err != nil {
		return nil, err
	}
	issuePer := time.Since(start) / time.Duration(tokens)
	spentLedger := separ.NewLedger()
	platform := separ.NewPlatform("p", spentLedger, authority.PublicKey())
	toks := make([]*separ.Token, tokens)
	for i := range toks {
		tok, err := worker.Take()
		if err != nil {
			return nil, err
		}
		toks[i] = tok
	}
	start = time.Now()
	for _, tok := range toks {
		if err := platform.AcceptWork(tok); err != nil {
			return nil, err
		}
	}
	spendDur := time.Since(start)
	t.AddRow("Separ anonymous tokens", "token authority", issuePer, spendDur/time.Duration(tokens), tps(tokens, spendDur))

	t.Notes = append(t.Notes,
		"ZKP transfer = 2 × 32-bit range proof + conservation proof + ownership sig",
		"token verify = 1 RSA signature check + double-spend lookup")
	return t, nil
}
