package bench

import (
	"fmt"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/pbft"
	"permchain/internal/core"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// E9Ablations isolates three design choices the surveyed systems lean on:
//
//  1. batching — how block size changes end-to-end chain throughput
//     (consensus cost amortizes over the batch);
//  2. message authentication — what signatures cost a BFT protocol
//     (FastFabric's crypto-offloading motivation);
//  3. attested committees — AHL's 2f+1-with-trusted-hardware vs plain
//     3f+1, measured as intra-shard ordering throughput per committee.
func E9Ablations(txs int) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "ablations: batching, signatures, attested committee size",
		Claim:   "batching amortizes consensus; signatures are a first-order BFT cost; trusted hardware shrinks committees and their message bill",
		Columns: []string{"ablation", "setting", "tps", "notes"},
	}

	// --- 1. Block size sweep on a full PBFT chain ---------------------------
	for _, bs := range []int{1, 8, 64, 256} {
		chain, err := core.New(core.Config{
			Nodes: 4, Protocol: core.PBFT, Arch: core.OX,
			BlockSize: bs, Timeout: 2 * time.Second, DisableSig: true,
			FlushEvery: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		chain.Start()
		gen := workload.New(9)
		batch := gen.KV(workload.KVConfig{Txs: txs, Keys: 10000})
		start := time.Now()
		for _, tx := range batch {
			if err := chain.Submit(tx); err != nil {
				chain.Stop()
				return nil, err
			}
		}
		chain.Flush()
		if !chain.Await(core.AwaitSpec{Nodes: []int{0}, Txs: txs, Timeout: 120 * time.Second}) {
			chain.Stop()
			return nil, fmt.Errorf("E9: block size %d stalled at %d/%d", bs, chain.Node(0).ProcessedTxs(), txs)
		}
		dur := time.Since(start)
		chain.Stop()
		t.AddRow("batching", fmt.Sprintf("block size %d", bs), tps(txs, dur),
			fmt.Sprintf("%d consensus decisions", (txs+bs-1)/bs))
	}

	// --- 2. Signatures on vs off (PBFT decisions) ---------------------------
	for _, sig := range []bool{false, true} {
		net := network.New()
		keys := crypto.NewKeyring(4)
		ids := []types.NodeID{0, 1, 2, 3}
		var reps []*pbft.Replica
		for _, id := range ids {
			r := pbft.New(consensus.Config{
				Self: id, Nodes: ids, Net: net, Keys: keys,
				Timeout: 2 * time.Second, DisableSig: !sig,
			})
			r.Start()
			reps = append(reps, r)
		}
		n := txs / 4
		start := time.Now()
		done := make(chan int, 1)
		go func() {
			got := consensus.WaitDecisions(reps[0].Decisions(), n, 120*time.Second)
			done <- len(got)
		}()
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("sig%v-%d", sig, i)
			reps[0].Submit(v, types.HashBytes([]byte(v)))
		}
		got := <-done
		dur := time.Since(start)
		for _, r := range reps {
			r.Stop()
		}
		label := "ed25519 signatures ON"
		if !sig {
			label = "signatures OFF"
		}
		t.AddRow("authentication", label, tps(got, dur), "pbft n=4, 1 decision per request")
	}

	// --- 3. Attested 2f+1 vs plain 3f+1 committees (AHL) --------------------
	// Measured as raw ordering throughput of one committee: the attested
	// variant marks its nodes non-equivocating on the transport and drops
	// the quorum to f+1 of 2f+1, shrinking both the replica set and the
	// message bill for the same fault budget.
	for _, attested := range []bool{true, false} {
		size := 4 // 3f+1, f=1
		if attested {
			size = 3 // 2f+1, f=1
		}
		alloc := cluster.NewAllocator(network.New())
		cl := alloc.NewCluster(0, cluster.Options{
			Size: size, Attested: attested,
			Consensus: consensus.Config{DisableSig: true},
		})
		n := txs / 2
		start := time.Now()
		committed := 0
		for i := 0; i < n; i++ {
			v := fmt.Sprintf("att%v-%d", attested, i)
			if _, err := cl.OrderSync(v, types.HashBytes([]byte(v)), 60*time.Second); err == nil {
				committed++
			}
		}
		dur := time.Since(start)
		cl.Stop()
		label := fmt.Sprintf("plain committee (3f+1 = %d nodes)", cl.Size())
		if attested {
			label = fmt.Sprintf("attested committee (2f+1 = %d nodes)", cl.Size())
		}
		t.AddRow("trusted hardware", label, tps(committed, dur),
			fmt.Sprintf("%d nodes per committee, same f=1", cl.Size()))
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d transactions per setting", txs),
		"batching rows use the full chain pipeline; others isolate consensus")
	return t, nil
}
