// Package bench is the experiment harness: it regenerates, as printed
// tables, every comparative claim of the paper's evaluation content —
// Figure 1 plus the four Discussion sections of §2.3 (see DESIGN.md's
// experiment index, E1–E8). cmd/permbench prints the tables;
// bench_test.go wraps each experiment as a testing.B benchmark.
//
// Each experiment has a Quick variant used by tests (seconds) and a full
// variant used for the recorded results in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"strings"
	"time"

	"permchain/internal/obs"
)

// Table is one experiment's result, formatted like the paper would
// report it.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's qualitative claim this table checks
	Columns []string
	Rows    [][]string
	Notes   []string
	// Metrics is the experiment's observability snapshot (histograms,
	// counters, gauges from the attached registry), emitted alongside the
	// table by permbench -metrics. Nil when the experiment does not attach
	// a registry.
	Metrics *obs.Snapshot
}

// attachMetrics stores the registry's final snapshot on the table.
func (t *Table) attachMetrics(o *obs.Obs) {
	if o == nil || o.Reg == nil {
		return
	}
	snap := o.Reg.Snapshot()
	t.Metrics = &snap
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = v.Round(10 * time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// tps computes transactions per second.
func tps(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// pct renders a ratio as a percentage string.
func pct(part, total int) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}
