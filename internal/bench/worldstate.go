package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"permchain/internal/arch/oxii"
	"permchain/internal/statedb"
	"permchain/internal/types"
)

// E13WorldState measures the sharded, incrementally-hashed world state
// (DESIGN.md, "World state") along the two axes the lock striping and the
// bucket tree exist for:
//
//   - hash: StateHash on a 100k-key state with a small dirty set, against
//     the seed's full-rescan implementation (sort every key, digest
//     everything). The bucket tree recomputes only dirty buckets, so the
//     cost is O(dirty), not O(total) — asserted ≥10× faster.
//   - exec: parallel OXII execution of a low-conflict workload across
//     worker counts, on a 1-shard store (the seed's single global lock,
//     reproduced exactly by WithShards(1)) and on the default 64-shard
//     store. With striping, throughput tracks the worker count on
//     multi-core hardware instead of flat-lining on the store lock; the
//     lock-waits column is the contention witness.
//
// Alongside the timings, every execution arm must land on the identical
// final state hash — the determinism contract that makes the hash-scheme
// change safe — and that check is hard-asserted on every attempt.
func E13WorldState(quick bool) (*Table, error) {
	const (
		hashKeys  = 100000
		dirtyKeys = 200
		blockSize = 256
	)
	totalTxs := 40960
	if quick {
		totalTxs = 8192
	}
	workers := []int{1, 2, 4, 8}

	tbl := &Table{
		ID:      "E13",
		Title:   "world state: incremental bucket-tree hashing and lock-striped execution scaling",
		Claim:   "removing store-wide serialization lets parallel executors scale with workers, and dirty-bucket hashing makes state commitment O(writes) instead of O(state)",
		Columns: []string{"phase", "config", "workers", "ops", "elapsed", "tps", "lock-waits"},
	}

	// --- hash phase -------------------------------------------------------
	// The timing comparison gets a few attempts (E12 precedent): the
	// speedup is structural (~100× here), but a sub-millisecond measurement
	// can be disturbed by scheduling noise.
	const attempts = 3
	var rescan, bucket time.Duration
	for try := 1; ; try++ {
		s := statedb.New()
		for i := 0; i < hashKeys; i++ {
			s.Apply(types.Version{Block: uint64(i/64 + 1), Tx: i % 64}, types.WriteSet{
				fmt.Sprintf("acct/%07d", i): statedb.EncodeInt(int64(i)),
			})
		}
		rescan = medianTime(3, func() { s.FullRescanHash() })
		s.StateHash() // warm the bucket caches
		// Dirty a small write set, then time only the re-hash; three
		// dirty→hash cycles, median.
		samples := make([]time.Duration, 3)
		for i := range samples {
			for d := 0; d < dirtyKeys; d++ {
				s.Apply(types.Version{Block: uint64(hashKeys + i), Tx: d}, types.WriteSet{
					fmt.Sprintf("acct/%07d", (i*dirtyKeys+d)*37%hashKeys): statedb.EncodeInt(int64(d)),
				})
			}
			t0 := time.Now()
			s.StateHash()
			samples[i] = time.Since(t0)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		bucket = samples[len(samples)/2]
		if rescan >= 10*bucket {
			break
		}
		if try == attempts {
			return tbl, fmt.Errorf("hash: bucket tree %v not ≥10× faster than full rescan %v in %d attempts",
				bucket, rescan, attempts)
		}
	}
	tbl.AddRow("hash", "full-rescan (seed)", "-", hashKeys, rescan, "-", "-")
	tbl.AddRow("hash", fmt.Sprintf("bucket-tree dirty=%d", dirtyKeys), "-", hashKeys, bucket, "-", "-")

	// --- exec phase -------------------------------------------------------
	type armKey struct {
		shards, workers int
	}
	type armResult struct {
		elapsed   time.Duration
		tps       float64
		lockWaits int64
		hash      types.Hash
	}
	runExec := func(shards, nw int) armResult {
		st := statedb.New(statedb.WithShards(shards))
		eng := oxii.New(st, 25, nw)
		start := time.Now()
		for base := 0; base < totalTxs; base += blockSize {
			txs := make([]*types.Transaction, blockSize)
			for i := range txs {
				// Consecutive keys mod 4096 never repeat within one block:
				// a zero-conflict dependency graph, the best case for
				// parallel execution and the worst case for a global lock.
				txs[i] = &types.Transaction{
					ID:  fmt.Sprintf("e13-%d", base+i),
					Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("acct%04d", (base+i)%4096), Delta: 1}},
				}
			}
			blk := types.NewBlock(uint64(base/blockSize+1), types.ZeroHash, 0, txs)
			s := eng.ExecuteBlock(blk)
			if s.Committed != blockSize {
				panic(fmt.Sprintf("E13: %d/%d committed", s.Committed, blockSize))
			}
		}
		elapsed := time.Since(start)
		return armResult{
			elapsed: elapsed, tps: tps(totalTxs, elapsed),
			lockWaits: st.LockWaits(), hash: st.StateHash(),
		}
	}

	// Thresholds scale to the hardware: a single-CPU box cannot show
	// parallel speedup on a CPU-bound workload, so there the assertion is
	// that striping does not collapse under extra workers.
	maxW := workers[len(workers)-1]
	wantSpeedup := 1.15
	if runtime.NumCPU() == 1 {
		wantSpeedup = 0.5
	}
	var results map[armKey]armResult
	for try := 1; ; try++ {
		results = make(map[armKey]armResult)
		var refHash types.Hash
		for _, shards := range []int{1, statedb.DefaultShards} {
			for _, nw := range workers {
				r := runExec(shards, nw)
				if refHash == (types.Hash{}) {
					refHash = r.hash
				} else if r.hash != refHash {
					// Determinism is hard-asserted on every attempt: same
					// transactions, any shard count, any worker count, one
					// final state hash.
					return tbl, fmt.Errorf("exec: shards=%d workers=%d final state hash diverges", shards, nw)
				}
				results[armKey{shards, nw}] = r
			}
		}
		sharded1 := results[armKey{statedb.DefaultShards, 1}]
		shardedN := results[armKey{statedb.DefaultShards, maxW}]
		if shardedN.tps >= wantSpeedup*sharded1.tps {
			break
		}
		if try == attempts {
			return tbl, fmt.Errorf("exec: shards=%d at %d workers ran %.0f tps vs %.0f tps single-worker (want ≥%.2f×) in %d attempts",
				statedb.DefaultShards, maxW, shardedN.tps, sharded1.tps, wantSpeedup, attempts)
		}
	}
	keys := make([]armKey, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].shards != keys[j].shards {
			return keys[i].shards < keys[j].shards
		}
		return keys[i].workers < keys[j].workers
	})
	for _, k := range keys {
		r := results[k]
		cfg := fmt.Sprintf("shards=%d", k.shards)
		if k.shards == 1 {
			cfg = "shards=1 (seed lock)"
		}
		tbl.AddRow("exec", cfg, k.workers, totalTxs, r.elapsed, r.tps, r.lockWaits)
	}

	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("hash phase: bucket tree re-hashed %d dirty keys of %d in %v vs %v for the seed full rescan (%.0f×)",
			dirtyKeys, hashKeys, bucket.Round(time.Microsecond), rescan.Round(time.Microsecond),
			float64(rescan)/float64(bucket)),
		"exec phase: every arm executes the identical zero-conflict OXII workload and must land on the identical state hash (asserted), regardless of shard or worker count",
		"shards=1 reproduces the seed's single global store lock; lock-waits counts acquisitions that blocked on a held shard",
		fmt.Sprintf("run on %d CPU(s); parallel speedup is asserted only on multi-core hardware (threshold here: ≥%.2f× from 1→%d workers on the sharded store)",
			runtime.NumCPU(), wantSpeedup, maxW))
	return tbl, nil
}

// medianTime runs fn n times and returns the median duration.
func medianTime(n int, fn func()) time.Duration {
	ds := make([]time.Duration, n)
	for i := range ds {
		t0 := time.Now()
		fn()
		ds[i] = time.Since(t0)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[n/2]
}
