package bench

import (
	"fmt"
	"os"
	"time"

	"permchain/internal/core"
	"permchain/internal/obs"
	"permchain/internal/store"
	"permchain/internal/types"
)

// E12Pipeline measures the commit pipeline against the inline baseline
// (DESIGN.md, "Commit pipeline"): the same durable workload run twice per
// configuration, once with Config.InlineCommit (execute, ledger-append,
// durable-append and snapshot all serialized in the decision loop) and
// once pipelined (executor and persister stages overlap, checkpoints go
// to the async snapshot writer).
//
// Two configurations isolate the two costs the pipeline hides:
//
//   - fsync=always: every block forces a durable sync; pipelined overlaps
//     block h+1's execution with block h's fsync.
//   - fsync=always snap-every=4: adds periodic state checkpoints; inline
//     pays serialization + checkpoint fsyncs on the critical path,
//     pipelined moves them off it entirely.
//
// Alongside the timing, the core/applied_during_snapshot counter is the
// deterministic witness: it counts blocks applied while a checkpoint
// write was in flight, which is impossible inline (asserted zero) and
// unavoidable pipelined with a small apply queue (asserted non-zero).
func E12Pipeline(quick bool) (*Table, error) {
	txs, blockSize, work := 1200, 8, 1500
	if quick {
		txs = 600
	}

	tbl := &Table{
		ID:    "E12",
		Title: "commit pipeline: inline vs pipelined commit path, by fsync policy and snapshot interval",
		Claim: "overlapping execution with durable appends — and moving snapshots off the critical path — raises throughput without weakening durability",
		Columns: []string{"config", "mode", "blocks", "txs", "elapsed", "tps",
			"fsyncs", "snapshots", "applied-during-snap"},
	}

	type armResult struct {
		row        []any
		tps        float64
		overlapped int64
		snapsAsync int64
	}
	runArm := func(name string, snapEvery uint64, inline bool) (armResult, error) {
		dir, err := os.MkdirTemp("", "permbench-e12-*")
		if err != nil {
			return armResult{}, err
		}
		defer os.RemoveAll(dir)
		o := obs.New()
		cfg := core.Config{
			Obs: o, WorkFactor: work, InlineCommit: inline,
			// A small apply queue keeps the executor paced to the
			// persister, so checkpoint writes always overlap applies.
			ApplyQueue: 8,
			Store: &store.Config{
				Dir: dir, Fsync: store.FsyncAlways, SnapshotEvery: snapEvery,
			},
		}
		elapsed, height, err := runPipelineArm(cfg, txs, blockSize)
		if err != nil {
			return armResult{}, fmt.Errorf("%s inline=%v: %w", name, inline, err)
		}
		mode := "pipelined"
		if inline {
			mode = "inline"
		}
		m := o.Reg.Snapshot()
		overlapped := m.Counters["core/applied_during_snapshot"]

		// The inline mechanism checks are deterministic: an inline
		// commit path cannot overlap an apply with a snapshot write and
		// never runs the async writer. The pipelined counterparts are
		// scheduling-dependent on a sub-second run (a fast executor can
		// drain every apply between two checkpoint writes), so they are
		// asserted in the retry loop below instead.
		if inline && overlapped != 0 {
			return armResult{}, fmt.Errorf("%s inline: %d blocks applied during snapshots", name, overlapped)
		}
		if inline && m.Counters["store/snapshots_async"] != 0 {
			return armResult{}, fmt.Errorf("%s inline: async snapshot writer ran", name)
		}
		return armResult{
			row: []any{name, mode, height, txs, elapsed, tps(txs, elapsed),
				m.Counters["store/fsyncs"], m.Counters["store/snapshots_written"], overlapped},
			tps: tps(txs, elapsed), overlapped: overlapped,
			snapsAsync: m.Counters["store/snapshots_async"],
		}, nil
	}

	type arm struct {
		name      string
		snapEvery uint64
	}
	for _, a := range []arm{{"fsync=always", 0}, {"fsync=always snap-every=4", 4}} {
		// The inline mechanism checks must hold on every attempt; the
		// timing comparison and the pipelined overlap evidence get a
		// few attempts because wall-clock noise and scheduling on a
		// sub-second run can mask a structural ~15-25% gap (or drain
		// every apply between two checkpoint writes).
		const attempts = 3
		var inlineRes, pipeRes armResult
		for try := 1; ; try++ {
			var err error
			if inlineRes, err = runArm(a.name, a.snapEvery, true); err != nil {
				return tbl, err
			}
			if pipeRes, err = runArm(a.name, a.snapEvery, false); err != nil {
				return tbl, err
			}
			// Under the race detector there is no overlap to win back:
			// instrumentation serializes the schedule and swamps the
			// fsync stalls the pipeline hides, so the strict "pipelined
			// beats inline" gate is unmeasurable there. Hold it to "no
			// collapse" and keep the mechanism evidence; normal builds
			// (and the CI E12 step) keep the strict comparison.
			tpsOK := pipeRes.tps > inlineRes.tps
			if raceEnabled {
				tpsOK = pipeRes.tps > 0.8*inlineRes.tps
			}
			if tpsOK && (a.snapEvery == 0 || (pipeRes.snapsAsync > 0 && pipeRes.overlapped > 0)) {
				break
			}
			if try == attempts {
				tbl.AddRow(inlineRes.row...)
				tbl.AddRow(pipeRes.row...)
				switch {
				case a.snapEvery > 0 && pipeRes.snapsAsync == 0:
					return tbl, fmt.Errorf("%s pipelined: no async snapshots written in %d attempts", a.name, attempts)
				case a.snapEvery > 0 && pipeRes.overlapped == 0:
					return tbl, fmt.Errorf("%s pipelined: no block applied during a snapshot write in %d attempts; checkpoints are not off-path", a.name, attempts)
				default:
					return tbl, fmt.Errorf("%s: pipelined %.0f tps did not beat inline %.0f tps in %d attempts",
						a.name, pipeRes.tps, inlineRes.tps, attempts)
				}
			}
		}
		tbl.AddRow(inlineRes.row...)
		tbl.AddRow(pipeRes.row...)
	}

	tbl.Notes = append(tbl.Notes,
		"both modes run the identical durable PBFT/OX workload; only the commit path differs",
		"fsyncs and snapshots are summed across all 4 nodes' stores",
		"applied-during-snap counts blocks applied while a checkpoint write was in flight: zero inline by construction, non-zero pipelined because checkpoints run off-path",
		"durability is identical in both modes: blocks sync per the fsync policy and the MANIFEST advances only after a checkpoint is durable")
	return tbl, nil
}

// runPipelineArm stands up a 4-node durable PBFT/OX cluster with cfg's
// commit-path settings, pushes txs through it, and returns the elapsed
// wall time and final height. Receipts on the first and last transaction
// double as an end-to-end check that the async client API settles.
func runPipelineArm(cfg core.Config, txs, blockSize int) (time.Duration, uint64, error) {
	cfg.Nodes = 4
	cfg.Protocol = core.PBFT
	cfg.Arch = core.OX
	cfg.BlockSize = blockSize
	if cfg.Timeout == 0 {
		cfg.Timeout = 300 * time.Millisecond
	}
	c, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	c.Start()
	defer c.Stop()
	start := time.Now()
	var first, last *core.Receipt
	for i := 0; i < txs; i++ {
		tx := &types.Transaction{ID: fmt.Sprintf("e12-%d", i),
			Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("k%d", i%17), Delta: 1}}}
		if i == 0 || i == txs-1 {
			r, err := c.SubmitAsync(tx)
			if err != nil {
				return 0, 0, err
			}
			if i == 0 {
				first = r
			} else {
				last = r
			}
			continue
		}
		if err := c.Submit(tx); err != nil {
			return 0, 0, err
		}
	}
	c.Flush()
	if !c.Await(core.AwaitSpec{Txs: txs, Timeout: 60 * time.Second}) {
		return 0, 0, fmt.Errorf("cluster processed %d/%d", c.Node(0).ProcessedTxs(), txs)
	}
	elapsed := time.Since(start)
	for _, r := range []*core.Receipt{first, last} {
		if err := r.Wait(10 * time.Second); err != nil {
			return 0, 0, fmt.Errorf("receipt %s: %w", r.TxID(), err)
		}
	}
	if err := c.VerifyReplication(); err != nil {
		return 0, 0, err
	}
	return elapsed, c.Node(0).Chain().Height(), nil
}
