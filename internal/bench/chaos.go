package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"permchain/internal/chaos"
	"permchain/internal/network"
	"permchain/internal/types"
)

// E10Chaos runs the chaos matrix: every consensus protocol under scripted
// fault schedules (crash-recovery and partition/heal always; leader kill,
// equivocation and a drop burst at full scale), reporting decided
// frontiers, drop causes, recovery latency, and the safety/liveness
// verdicts. This is the robustness counterpart to E8's throughput
// comparison: §2.2's claim that permissioned protocols keep safety under
// faults and regain liveness after them, checked run by run.
func E10Chaos(quick bool) (*Table, error) {
	warm, dark, post := 5, 10, 5
	if quick {
		warm, dark, post = 2, 3, 2
	}

	tbl := &Table{
		ID:    "E10",
		Title: "chaos matrix: protocols under scripted fault schedules",
		Claim: "safety holds through every fault; liveness returns bounded after the last heal (§2.2)",
		Columns: []string{"protocol", "schedule", "n", "decided",
			"drops(rate/part/crash/adm)", "recovered(disk/fetch)", "recovery", "safety", "liveness"},
	}

	var failures []string
	for _, p := range chaos.Protocols() {
		n := p.MinN
		last := types.NodeID(n - 1)
		minority := []types.NodeID{last}
		var majority []types.NodeID
		for i := 0; i < n-1; i++ {
			majority = append(majority, types.NodeID(i))
		}

		type scenario struct {
			name    string
			sched   []chaos.Event
			skip    bool
			durable bool
		}
		scenarios := []scenario{
			{name: "crash-recovery", sched: chaos.CrashRecoverySchedule(last, warm, dark, post)},
			{name: "partition-heal", sched: chaos.PartitionHealSchedule(minority, majority, warm, dark, post)},
			{name: "full-restart", sched: chaos.FullClusterRestartSchedule(warm, post), durable: true},
		}
		if !quick {
			scenarios = append(scenarios,
				scenario{name: "leader-kill", sched: chaos.LeaderKillSchedule(warm, dark, 500*time.Millisecond)},
				scenario{name: "drop-burst", sched: chaos.DropBurstSchedule(0.05, warm, dark, post, 200*time.Millisecond)},
				scenario{name: "equivocation", sched: chaos.EquivocationSchedule(last, warm, dark, post),
					skip: !p.ByzFault}, // violates the CFT fault model
			)
		}

		for _, sc := range scenarios {
			if sc.skip {
				tbl.AddRow(p.Name, sc.name, n, "-", "-", "-", "-", "n/a (CFT)", "n/a (CFT)")
				continue
			}
			var dir string
			if sc.durable {
				var err error
				if dir, err = os.MkdirTemp("", "permbench-e10-*"); err != nil {
					return tbl, err
				}
				defer os.RemoveAll(dir)
			}
			rep := chaos.Run(chaos.Config{
				Protocol: p,
				N:        n,
				Seed:     1,
				Timeout:  150 * time.Millisecond,
				Schedule: sc.sched,
				Dir:      dir,
			})
			safety := "held"
			if len(rep.SafetyViolations) > 0 {
				safety = fmt.Sprintf("VIOLATED (%d)", len(rep.SafetyViolations))
			}
			liveness := "ok"
			if !rep.LivenessOK {
				liveness = "STALLED"
			}
			tbl.AddRow(p.Name, sc.name, n,
				fmt.Sprintf("%d/%d/%d", rep.DecisionsBefore, rep.DecisionsDuring, rep.DecisionsAfter),
				fmt.Sprintf("%d/%d/%d/%d",
					rep.Stats.ByCause[network.DropRate],
					rep.Stats.ByCause[network.DropPartition],
					rep.Stats.ByCause[network.DropCrash],
					rep.Stats.ByCause[network.DropAdmission]),
				fmt.Sprintf("%d/%d", rep.DiskReplayed, rep.RecoveryFetches()),
				rep.RecoveryLatency, safety, liveness)
			if !rep.Ok() {
				failures = append(failures, fmt.Sprintf("%s/%s:\n%s", p.Name, sc.name, rep))
			}
		}
	}
	tbl.Notes = append(tbl.Notes,
		"decided column is the committed frontier before/during/after faults",
		"recovered(disk/fetch) splits the recovery source: decisions replayed from durable logs vs state-transfer pulls from peers",
		"recovery is the post-heal liveness probe's commit latency across all live replicas")
	if len(failures) > 0 {
		return tbl, fmt.Errorf("chaos runs failed:\n%s", strings.Join(failures, "\n"))
	}
	return tbl, nil
}
