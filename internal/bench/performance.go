package bench

import (
	"fmt"
	"runtime"
	"time"

	"permchain/internal/arch"
	"permchain/internal/arch/ox"
	"permchain/internal/arch/oxii"
	"permchain/internal/arch/xov"
	"permchain/internal/core"
	"permchain/internal/obs"
	"permchain/internal/statedb"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// E1Figure1 reproduces Figure 1: a five-node permissioned blockchain
// where every node maintains its own copy of the hash-chained ledger.
// It reports per-node ledger heights, transaction counts and whether all
// copies are identical — including after a node crash-recovers into a
// view change.
func E1Figure1(txs int) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Figure 1: five-node permissioned blockchain, replicated ledger",
		Claim:   "each node maintains a copy of the blockchain ledger; all copies are identical",
		Columns: []string{"node", "ledger height", "txs", "chain valid", "identical to n0"},
	}
	o := obs.New()
	chain, err := core.New(core.Config{
		Nodes: 5, Protocol: core.PBFT, Arch: core.OX,
		BlockSize: 16, Timeout: 500 * time.Millisecond,
		Obs: o,
	})
	if err != nil {
		return nil, err
	}
	chain.Start()
	defer chain.Stop()

	gen := workload.New(1)
	for _, tx := range gen.KV(workload.KVConfig{Txs: txs, Keys: 1000, OpsPerTx: 2}) {
		if err := chain.Submit(tx); err != nil {
			return nil, err
		}
	}
	chain.Flush()
	if !chain.Await(core.AwaitSpec{Txs: txs, Timeout: 60 * time.Second}) {
		return nil, fmt.Errorf("E1: nodes stalled at %d/%d txs", chain.Node(0).ProcessedTxs(), txs)
	}
	repErr := chain.VerifyReplication()
	for i, n := range chain.Nodes() {
		valid := n.Chain().Verify() == nil
		identical := chain.Node(0).Chain().EqualTo(n.Chain())
		t.AddRow(fmt.Sprintf("n%d", i), n.Chain().Height(), n.ProcessedTxs(), valid, identical)
	}
	if repErr != nil {
		t.Notes = append(t.Notes, "REPLICATION VIOLATED: "+repErr.Error())
	} else {
		t.Notes = append(t.Notes, "replication invariant holds: all 5 ledger copies and states identical")
	}
	if hs, ok := o.Reg.Snapshot().Histograms["core/submit_to_apply"]; ok {
		t.Notes = append(t.Notes, "end-to-end submit→apply latency: "+hs.DurString())
	}
	t.attachMetrics(o)
	return t, nil
}

// archRun drives one architecture's processing pipeline over a workload,
// without consensus in the loop, so the measured quantity is the §2.3.3
// comparison: how each architecture handles (non-)conflicting
// transactions. workFactor models contract execution cost per op.
func archRun(name string, o *obs.Obs, txs []*types.Transaction, blockSize, workFactor int) (arch.Stats, time.Duration) {
	store := statedb.New()
	var st arch.Stats
	start := time.Now()
	switch name {
	case "OX":
		e := ox.New(store, workFactor)
		e.SetObs(o)
		for h, blk := range blocks(txs, blockSize) {
			st.Add(e.ExecuteBlock(types.NewBlock(uint64(h+1), types.ZeroHash, 0, blk)))
		}
	case "OXII":
		e := oxii.New(store, workFactor, 0)
		e.SetObs(o)
		for h, blk := range blocks(txs, blockSize) {
			st.Add(e.ExecuteBlock(types.NewBlock(uint64(h+1), types.ZeroHash, 0, blk)))
		}
	default: // XOV family: name selects the option set
		e := xov.New(store, xovOptions(name), workFactor, 0)
		e.SetObs(o)
		for h, blk := range blocks(txs, blockSize) {
			// Pipelined endorsement: the whole block is endorsed against
			// the same pre-block snapshot, as under load in Fabric.
			kept := e.EndorseAll(blk)
			st.Add(e.CommitBlock(types.NewBlock(uint64(h+1), types.ZeroHash, 0, kept)))
			st.Failed += len(blk) - len(kept)
		}
	}
	return st, time.Since(start)
}

func runtimeNumCPU() int { return runtime.NumCPU() }

func xovOptions(name string) xov.Options {
	switch name {
	case "XOV":
		return xov.Options{}
	case "FastFabric":
		return xov.Options{ParallelValidation: true}
	case "Fabric++":
		return xov.Options{Reorder: arch.ReorderFabricPP, EarlyAbort: true}
	case "FabricSharp":
		return xov.Options{Reorder: arch.ReorderSharp, EarlyAbort: true}
	case "XOX":
		return xov.Options{PostOrderExecution: true}
	default:
		return xov.Options{}
	}
}

func blocks(txs []*types.Transaction, size int) [][]*types.Transaction {
	var out [][]*types.Transaction
	for start := 0; start < len(txs); start += size {
		end := start + size
		if end > len(txs) {
			end = len(txs)
		}
		out = append(out, txs[start:end])
	}
	return out
}

// cloneWorkload deep-copies transactions so each architecture run starts
// from untouched rw-sets.
func cloneWorkload(txs []*types.Transaction) []*types.Transaction {
	out := make([]*types.Transaction, len(txs))
	for i, tx := range txs {
		cp := *tx
		cp.Reads = nil
		cp.Writes = nil
		out[i] = &cp
	}
	return out
}

// E2Architectures reproduces the §2.3.3 Discussion comparison: OX vs
// OXII vs XOV throughput and abort behavior across a contention sweep.
func E2Architectures(txCount, blockSize, workFactor int) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "architectures under contention (OX vs OXII vs XOV)",
		Claim:   "OX suffers sequential execution; OXII and XOV parallelize; under contention XOV aborts conflicting txs while OXII only loses parallelism",
		Columns: []string{"skew", "conflict rate", "arch", "tps", "ideal speedup", "committed", "aborted", "abort %"},
	}
	o := obs.New()
	for _, skew := range []float64{0, 0.5, 1.2, 1.5} {
		gen := workload.New(42)
		base := gen.KV(workload.KVConfig{Txs: txCount, Keys: 20000, OpsPerTx: 1, ReadOps: 1, Skew: skew})
		rate := workload.ConflictRate(base, blockSize)
		// Host-independent parallelism: how much the dependency graph lets
		// OXII parallelize (total work / critical path), averaged over
		// blocks. OX is serial by definition; XOV endorsement parallelizes
		// across the whole block regardless of conflicts (conflicts become
		// aborts instead of dependencies).
		totalOps, critOps := 0, 0
		for _, blk := range blocks(base, blockSize) {
			totalOps += arch.TotalOps(blk)
			critOps += arch.CriticalPathOps(blk)
		}
		oxiiSpeedup := fmt.Sprintf("%.1fx", float64(totalOps)/float64(critOps))
		speedups := map[string]string{"OX": "1.0x (serial)", "OXII": oxiiSpeedup, "XOV": fmt.Sprintf("%dx (endorse)", blockSize)}
		for _, name := range []string{"OX", "OXII", "XOV"} {
			st, dur := archRun(name, o, cloneWorkload(base), blockSize, workFactor)
			t.AddRow(fmt.Sprintf("%.1f", skew), fmt.Sprintf("%.3f", rate), name,
				tps(txCount, dur), speedups[name], st.Committed, st.Aborted, pct(st.Aborted, txCount))
		}
	}
	t.attachMetrics(o)
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %d txs, 1 RMW + 1 read op each, blocks of %d, contract cost %d hash-units/op", txCount, blockSize, workFactor),
		fmt.Sprintf("'ideal speedup' is host-independent (dependency-graph critical path); this host has %d CPU core(s), so wall-clock tps cannot exhibit it", runtimeNumCPU()))
	return t, nil
}

// E3FabricFamily reproduces the Fabric-optimization comparison of §2.3.3:
// vanilla XOV vs FastFabric vs Fabric++ vs FabricSharp vs XOX at fixed
// contention.
func E3FabricFamily(txCount, blockSize, workFactor int) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Fabric optimization family (XOV variants) under contention",
		Claim:   "FastFabric speeds conflict-free validation; Fabric++/FabricSharp reduce aborts by reordering (Sharp aborts least); XOX salvages aborted txs by re-execution",
		Columns: []string{"variant", "tps", "committed", "aborted", "reexecuted", "effective commit %"},
	}
	o := obs.New()
	gen := workload.New(42)
	base := gen.KV(workload.KVConfig{Txs: txCount, Keys: 20000, OpsPerTx: 1, ReadOps: 2, Skew: 1.2})
	for _, name := range []string{"XOV", "FastFabric", "Fabric++", "FabricSharp", "XOX"} {
		st, dur := archRun(name, o, cloneWorkload(base), blockSize, workFactor)
		t.AddRow(name, tps(txCount, dur), st.Committed, st.Aborted, st.Reexecuted,
			pct(st.Committed, txCount))
	}
	// Conflict-free control: FastFabric's headline case.
	free := gen.KV(workload.KVConfig{Txs: txCount, Keys: txCount * 10, OpsPerTx: 1, ReadOps: 1, Skew: 0})
	for _, name := range []string{"XOV", "FastFabric"} {
		st, dur := archRun(name, o, cloneWorkload(free), blockSize, workFactor)
		t.AddRow(name+" (conflict-free)", tps(txCount, dur), st.Committed, st.Aborted,
			st.Reexecuted, pct(st.Committed, txCount))
	}
	t.Notes = append(t.Notes, "contended rows: Zipf 1.2; control rows: uniform over a large keyspace")
	t.attachMetrics(o)
	return t, nil
}
