package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "demo", Claim: "things hold",
		Columns: []string{"a", "longer-column"},
	}
	tbl.AddRow("x", 3.14159)
	tbl.AddRow(42, time.Millisecond)
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.String()
	for _, want := range []string{"EX — demo", "paper claim: things hold", "longer-column", "3.1", "1ms", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestE1Quick(t *testing.T) {
	tbl, err := E1Figure1(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" || row[4] != "true" {
			t.Fatalf("replication violated: %v", row)
		}
	}
	if !strings.Contains(strings.Join(tbl.Notes, " "), "holds") {
		t.Fatalf("notes: %v", tbl.Notes)
	}
}

func TestE2Quick(t *testing.T) {
	tbl, err := E2Architectures(400, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 skews × 3 archs.
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Shape check: at the highest skew, XOV aborts while OXII does not.
	var oxiiAborts, xovAborts string
	for _, row := range tbl.Rows {
		if row[0] == "1.5" && row[2] == "OXII" {
			oxiiAborts = row[6]
		}
		if row[0] == "1.5" && row[2] == "XOV" {
			xovAborts = row[6]
		}
	}
	if oxiiAborts != "0" {
		t.Fatalf("OXII aborted %s txs", oxiiAborts)
	}
	if xovAborts == "0" {
		t.Fatal("XOV aborted nothing under heavy contention")
	}
	t.Log("\n" + tbl.String())
}

func TestE3Quick(t *testing.T) {
	tbl, err := E3FabricFamily(400, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	atoiF := func(s string) int {
		n := 0
		for _, c := range s {
			if c < '0' || c > '9' {
				break
			}
			n = n*10 + int(c-'0')
		}
		return n
	}
	// Reordering reduces aborts; Sharp never aborts more than Fabric++.
	if atoiF(byName["Fabric++"][3]) > atoiF(byName["XOV"][3]) {
		t.Fatalf("Fabric++ aborted more than vanilla: %v vs %v", byName["Fabric++"][3], byName["XOV"][3])
	}
	if atoiF(byName["FabricSharp"][3]) > atoiF(byName["Fabric++"][3]) {
		t.Fatal("FabricSharp aborted more than Fabric++")
	}
	// XOX ends with zero net aborts (all re-executed or failed).
	if byName["XOX"][3] != "0" {
		t.Fatalf("XOX left aborts: %v", byName["XOX"][3])
	}
	t.Log("\n" + tbl.String())
}

func TestE4Quick(t *testing.T) {
	tbl, err := E4Confidentiality(30, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Caper leaks zero of e2's internal txs into e1.
	if tbl.Rows[0][1] != "0 txs" {
		t.Fatalf("caper leaked: %v", tbl.Rows[0])
	}
	t.Log("\n" + tbl.String())
}

func TestE5Quick(t *testing.T) {
	tbl, err := E5Verifiability(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	t.Log("\n" + tbl.String())
}

func TestE6Quick(t *testing.T) {
	tbl, err := E6ShardingScaling(30, []int{2}, []float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	// 1 ResilientDB row + 2 sharded rows per (shardCount, crossFrac).
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	t.Log("\n" + tbl.String())
}

func TestE7Quick(t *testing.T) {
	tbl, err := E7CrossShardLatency(2, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	t.Log("\n" + tbl.String())
}

func TestE8Quick(t *testing.T) {
	tbl, err := E8ConsensusProtocols(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[2] == "0.0" {
			t.Fatalf("protocol %s decided nothing", row[0])
		}
	}
	t.Log("\n" + tbl.String())
}

func TestE9Quick(t *testing.T) {
	tbl, err := E9Ablations(120)
	if err != nil {
		t.Fatal(err)
	}
	// 4 batching + 2 signature + 2 committee rows.
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	t.Log("\n" + tbl.String())
}

func TestE12Quick(t *testing.T) {
	tbl, err := E12Pipeline(true)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	// 2 configurations × {inline, pipelined}.
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	t.Log("\n" + tbl.String())
}

func TestE13Quick(t *testing.T) {
	tbl, err := E13WorldState(true)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	// 2 hash rows + 2 store arms × 4 worker counts.
	if len(tbl.Rows) != 10 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	t.Log("\n" + tbl.String())
}

func TestE10Quick(t *testing.T) {
	tbl, err := E10Chaos(true)
	if err != nil {
		t.Fatal(err)
	}
	// 6 protocols × 3 quick schedules (crash-recovery, partition-heal, full-restart).
	if len(tbl.Rows) != 18 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	for _, row := range tbl.Rows {
		if row[7] != "held" || row[8] != "ok" {
			t.Fatalf("chaos row failed: %v", row)
		}
	}
	t.Log("\n" + tbl.String())
}

func TestE14Quick(t *testing.T) {
	tbl, err := E14Overload(true)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	// 1 ramp row + 4 overload arms.
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	t.Log("\n" + tbl.String())
}

// TestE15Quick pins the quorum-certificate subsystem's headline numbers:
// aggregated PBFT must pay strictly fewer messages per commit than counted
// PBFT once the cluster is large (n=32), and a 64-replica HotStuff cluster
// with real Schnorr shares must reach committed height.
func TestE15Quick(t *testing.T) {
	tbl, err := E15QuorumScaling(true)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	// 2 protocols × 2 modes × 2 cluster sizes + the signed 64-replica arm.
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	msgsPer := func(proto, mode string, n string) float64 {
		t.Helper()
		for _, row := range tbl.Rows {
			if row[0] == proto && row[1] == mode && row[2] == n {
				v, err := strconv.ParseFloat(row[5], 64)
				if err != nil {
					t.Fatalf("row %v: msgs/commit %q: %v", row, row[5], err)
				}
				return v
			}
		}
		t.Fatalf("no row for %s/%s n=%s\n%s", proto, mode, n, tbl)
		return 0
	}
	counted := msgsPer("pbft", "counted", "32")
	aggregated := msgsPer("pbft", "aggregated", "32")
	if aggregated >= counted {
		t.Fatalf("aggregated PBFT at n=32 pays %.1f msgs/commit, counted pays %.1f — aggregation must be strictly cheaper\n%s",
			aggregated, counted, tbl)
	}
	found := false
	for _, row := range tbl.Rows {
		if row[0] == "hotstuff" && row[1] == "aggregated" && row[2] == "64" {
			found = true
			if row[3] != "schnorr" {
				t.Fatalf("64-replica hotstuff arm ran without real shares: %v", row)
			}
			if row[4] != "3/3" {
				t.Fatalf("64-replica hotstuff arm decided %s, want 3/3\n%s", row[4], tbl)
			}
		}
	}
	if !found {
		t.Fatalf("no 64-replica aggregated hotstuff arm\n%s", tbl)
	}
	t.Log("\n" + tbl.String())
}

// TestE17Quick is the tier-1 gate on the wire codec and allocation-free
// hot path. E17WireCodec itself errors when any hard gate fails: a
// steady-state encode (tx, partial, cert) or decode-into (partial,
// cert) that allocates, a codec drop or stall in any protocol's
// wire-mode cluster, a list-path executor that does not at least halve
// allocs/tx vs the map path, or a wire-transport arm that loses more
// than noise vs struct-pointer transport.
func TestE17Quick(t *testing.T) {
	tbl, err := E17WireCodec(true)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	// 3 frame rows + 6 bytes/msg rows + 1 executor row + 2 pipeline rows.
	if len(tbl.Rows) != 12 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	var drop float64
	for _, row := range tbl.Rows {
		if row[0] == "executor" {
			if _, err := fmt.Sscanf(row[3], "%fx drop", &drop); err != nil {
				t.Fatalf("executor row %v: %v", row, err)
			}
		}
	}
	if drop < 2 {
		t.Fatalf("executor allocs drop %.1fx, want ≥2x\n%s", drop, tbl)
	}
	t.Log("\n" + tbl.String())
}

// TestE16Quick is the tier-1 gate on the sharded capstone: aggregate
// throughput must strictly increase from 1 to 4 shards at 0% cross-shard
// traffic, and the safety arm (participant crash mid-2PC, recovery from
// WAL decision records) must hold the all-or-nothing invariant with zero
// subset commits and zero lost locks — E16HorizontalScaling returns an
// error otherwise.
func TestE16Quick(t *testing.T) {
	tbl, err := E16HorizontalScaling(true)
	if err != nil {
		t.Fatalf("%v\n%s", err, tbl)
	}
	// (1 + 2×2) scaling rows + 1 safety row.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d\n%s", len(tbl.Rows), tbl)
	}
	tpsAt := func(shards string) float64 {
		t.Helper()
		for _, row := range tbl.Rows {
			if row[0] == "scaling" && row[1] == shards && row[2] == "0%" {
				v, err := strconv.ParseFloat(row[3], 64)
				if err != nil {
					t.Fatalf("row %v: tps %q: %v", row, row[3], err)
				}
				return v
			}
		}
		t.Fatalf("no 0%% scaling row for %s shards\n%s", shards, tbl)
		return 0
	}
	t1, t2, t4 := tpsAt("1"), tpsAt("2"), tpsAt("4")
	if !(t4 > t2 && t2 > t1) {
		t.Fatalf("aggregate tps not strictly increasing with shards at 0%% cross: 1→%.1f 2→%.1f 4→%.1f\n%s", t1, t2, t4, tbl)
	}
	t.Log("\n" + tbl.String())
}
