package bench

import (
	"fmt"
	"os"
	"time"

	"permchain/internal/chaos"
	"permchain/internal/core"
	"permchain/internal/mempool"
	"permchain/internal/obs"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// E14Overload measures the overload-safe front door (DESIGN.md,
// "Admission control & backpressure"): first a coordinated-omission-safe
// open-loop ramp locates the cluster's saturation point, then the
// overload arms offer guaranteed-overload load — a 3×-capacity burst, a
// sustained open-loop stream at 2× the measured saturation rate, a
// 90/10 hot-client split, and a crash mid-burst with disk recovery —
// and assert graceful degradation rather than collapse:
//
//   - overload surfaces as typed *mempool.RejectError sheds with
//     retry-after hints, visible in the transport's per-cause drop
//     accounting (DropAdmission), never as silent queueing;
//   - the pool's occupancy high-water mark stays within Capacity and
//     the apply queue's observed depth stays within its bound, at every
//     offered load;
//   - committed-transaction p99 (measured from intended arrival — the
//     open-loop driver charges stalls to the schedule) stays bounded;
//   - no admitted transaction loses its receipt: committed + orphaned
//     equals admitted, including across the crash/recovery arm.
//
// The ramp's bracket (last clean rate, first saturated rate) is recorded
// in the table and therefore lands in BENCH_E14.json.
func E14Overload(quick bool) (*Table, error) {
	capacity, stepTxs, startRate := 64, 300, 500.0
	if quick {
		capacity, stepTxs, startRate = 32, 120, 400.0
	}

	tbl := &Table{
		ID:    "E14",
		Title: "overload front door: bounded mempool, admission control and graceful degradation under saturation",
		Claim: "a bounded admission layer degrades gracefully: overload is shed with typed, hinted rejections while queues, latency and receipts stay bounded — including across a crash mid-burst",
		Columns: []string{"arm", "rate(tx/s)", "offered", "admitted", "shed",
			"committed", "orphaned", "max-occ/cap", "apply-q max", "p99(co-safe)"},
	}

	// Phase 1: locate the saturation point with the open-loop ramp.
	sat, err := measureSaturation(capacity, stepTxs, startRate)
	if err != nil {
		return tbl, err
	}
	knee := sat.SaturationRate
	if knee == 0 {
		// The ramp ran out of steps before the knee; the bracket's top is
		// still a lower bound on capacity, so overload at 2× it is not
		// guaranteed — record and push on with the last rate anyway.
		knee = sat.MaxSustainable
		tbl.Notes = append(tbl.Notes, "ramp did not saturate within its steps; using its top rate as the knee estimate")
	}
	last := sat.Steps[len(sat.Steps)-1]
	tbl.AddRow("ramp", knee, last.Offered, last.Admitted, last.Shed,
		last.Settled, 0, fmt.Sprintf("-/%d", capacity), "-", last.P99)
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("saturation bracket: clean at %.0f tx/s, saturated at %.0f tx/s (capacity %d, shed threshold 5%%)",
			sat.MaxSustainable, sat.SaturationRate, capacity))

	// Phase 2: the overload arms, each a fresh cluster. The sustained arm
	// offers 2× the measured knee — overload by construction, not by
	// guessing a rate.
	dir, err := os.MkdirTemp("", "permbench-e14-*")
	if err != nil {
		return tbl, err
	}
	defer os.RemoveAll(dir)
	arms := []chaos.OverloadConfig{
		{Arm: chaos.ArmBurst, Capacity: capacity},
		{Arm: chaos.ArmSustained, Capacity: capacity, Rate: 2 * knee, Txs: 8 * capacity, P99Bound: 30 * time.Second},
		{Arm: chaos.ArmHotClient, Capacity: capacity},
		{Arm: chaos.ArmCrashRecovery, Capacity: capacity, Dir: dir},
	}
	var lastMetrics obs.Snapshot
	for _, acfg := range arms {
		rep := chaos.RunOverload(acfg)
		lastMetrics = rep.Metrics
		rate := "-"
		if acfg.Rate > 0 {
			rate = fmt.Sprintf("%.0f", acfg.Rate)
		}
		p99 := "-"
		if rep.P99 > 0 {
			p99 = rep.P99.Round(10 * time.Microsecond).String()
		}
		tbl.AddRow(string(rep.Arm), rate, rep.Offered, rep.Admitted, rep.Shed,
			rep.Committed, rep.Orphaned,
			fmt.Sprintf("%d/%d", rep.MaxOccupancy, rep.Capacity),
			rep.ApplyQueueMax, p99)
		if !rep.Ok() {
			return tbl, fmt.Errorf("arm %s:\n%s", rep.Arm, rep)
		}
		if rep.Shed == 0 {
			return tbl, fmt.Errorf("arm %s offered overload but shed nothing", rep.Arm)
		}
	}
	tbl.Metrics = &lastMetrics

	tbl.Notes = append(tbl.Notes,
		"all phases are open-loop and coordinated-omission safe: latency is measured from each transaction's intended arrival time, so driver stalls are charged to the schedule, not omitted",
		"sheds are typed *mempool.RejectError values carrying retry-after hints derived from the pool's drain-rate EWMA",
		"max-occ/cap is the pool's occupancy high-water mark against its hard capacity; apply-q max is the deepest observed apply-queue length — both bounded regardless of offered load",
		"committed + orphaned = admitted on every arm: no admitted transaction loses its receipt, including across the crash/recovery arm's kill and disk replay",
		"the sustained arm offers 2x the ramp's measured saturation rate, so its overload is constructed, not assumed")
	return tbl, nil
}

// measureSaturation stands up a fresh admission-controlled cluster and
// ramps offered load geometrically until it sheds (or blows a 5s p99).
func measureSaturation(capacity, stepTxs int, startRate float64) (workload.SaturationResult, error) {
	c, err := core.New(core.Config{
		Nodes: 4, Protocol: core.PBFT, Arch: core.OX, BlockSize: 8,
		Timeout: 400 * time.Millisecond,
		Mempool: &mempool.Config{Capacity: capacity},
	})
	if err != nil {
		return workload.SaturationResult{}, err
	}
	c.Start()
	defer c.Stop()
	gen := workload.New(7)
	res := workload.FindSaturation(workload.SaturationConfig{
		StartRate:     startRate,
		Growth:        2,
		StepTxs:       stepTxs,
		MaxSteps:      8,
		ShedThreshold: 0.05,
		P99Bound:      5 * time.Second,
		Gen: func(step, n int) []*types.Transaction {
			txs := gen.KV(workload.KVConfig{Txs: n, Keys: 64})
			for i, tx := range txs {
				tx.ID = fmt.Sprintf("sat-%d-%d", step, i)
			}
			return txs
		},
		Submit: func(tx *types.Transaction) (<-chan struct{}, error) {
			r, err := c.SubmitAsync(tx)
			if err != nil {
				return nil, err
			}
			return r.Done(), nil
		},
		IsShed:        mempool.IsReject,
		SettleTimeout: 60 * time.Second,
	})
	if len(res.Steps) == 0 {
		return res, fmt.Errorf("saturation ramp produced no steps")
	}
	return res, nil
}
