package bench

import (
	"fmt"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/hotstuff"
	"permchain/internal/consensus/pbft"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/quorumcert"
	"permchain/internal/types"
)

// e15Arm is one measured configuration of the quorum-scaling experiment.
type e15Arm struct {
	proto     string
	agg       bool // aggregate votes into Schnorr quorum certs (+ vote batching)
	n         int
	decisions int
	signed    bool // real Schnorr shares instead of unsigned bitmap certs
}

// E15QuorumScaling measures the vote-aggregation subsystem at cluster
// sizes the counted BFT vote phases cannot reach: commit latency and
// messages per committed decision for PBFT and HotStuff, with and without
// Schnorr quorum certificates, as n grows toward 128 replicas.
//
// Counted PBFT multicasts every prepare and commit vote (~2n² messages per
// slot); aggregate mode routes signature shares to the primary and relays
// one constant-size certificate per phase (~5n). HotStuff is already
// leader-centric (O(n)), so aggregation there trades the per-vote ed25519
// signatures for one cert check without changing the message pattern.
// Most arms disable signatures to isolate the message complexity; the
// flagship 64-replica HotStuff arm runs real Schnorr shares end-to-end.
func E15QuorumScaling(quick bool) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "vote aggregation at scale: msgs/commit and latency vs cluster size",
		Claim: "counted PBFT voting costs O(n²) messages per decision and dominates at n >= 32; aggregated quorum certificates flatten it to O(n), keeping 64-128 replica clusters committable",
		Columns: []string{"protocol", "votes", "n", "sigs", "decided",
			"msgs/commit", "commit p50", "commit p95"},
	}

	var arms []e15Arm
	if quick {
		for _, proto := range []string{"pbft", "hotstuff"} {
			for _, n := range []int{4, 32} {
				d := 8
				if n >= 32 {
					d = 4
				}
				arms = append(arms,
					e15Arm{proto: proto, agg: false, n: n, decisions: d},
					e15Arm{proto: proto, agg: true, n: n, decisions: d})
			}
		}
		arms = append(arms, e15Arm{proto: "hotstuff", agg: true, n: 64, decisions: 3, signed: true})
	} else {
		decAt := map[int]int{4: 60, 16: 30, 32: 15, 64: 8, 128: 4}
		for _, proto := range []string{"pbft", "hotstuff"} {
			for _, n := range []int{4, 16, 32, 64, 128} {
				if proto == "pbft" && !quick && n > 64 {
					// Counted PBFT at n=128 is ~33k messages per slot; the
					// aggregated arm still runs. Cap the counted arm at 64.
					arms = append(arms, e15Arm{proto: proto, agg: true, n: n, decisions: decAt[n]})
					continue
				}
				arms = append(arms,
					e15Arm{proto: proto, agg: false, n: n, decisions: decAt[n]},
					e15Arm{proto: proto, agg: true, n: n, decisions: decAt[n]})
			}
		}
		arms = append(arms, e15Arm{proto: "hotstuff", agg: true, n: 64, decisions: 5, signed: true})
	}

	for _, a := range arms {
		if err := runE15Arm(t, a); err != nil {
			return t, err
		}
	}
	t.Notes = append(t.Notes,
		"aggregate mode routes Schnorr shares to the leader/primary and relays one constant-size cert per phase; vote batching coalesces share traffic per destination",
		"sigs=off isolates message complexity (unsigned bitmap certs); sigs=schnorr runs real shares and one-equation cert verification",
		"inbox depth lowered to 8192 per endpoint so 128-replica clusters stay within memory")
	return t, nil
}

// runE15Arm builds one cluster, commits the arm's decision count, and
// appends its measurement row. Each arm gets a fresh registry so latency
// histograms never mix configurations.
func runE15Arm(t *Table, a e15Arm) error {
	o := obs.New()
	net := network.New(network.WithInboxDepth(8192))
	keys := crypto.NewKeyring(a.n)
	ids := make([]types.NodeID, a.n)
	for i := range ids {
		ids[i] = types.NodeID(i)
	}
	var voteKeys *quorumcert.Keys
	if a.agg && a.signed {
		voteKeys = quorumcert.NewKeys()
	}
	reps := make([]consensus.Replica, a.n)
	for i := range reps {
		cfg := consensus.Config{
			Self: ids[i], Nodes: ids, Net: net, Keys: keys,
			Timeout: 2 * time.Second, DisableSig: !a.signed, Obs: o,
			AggregateVotes: a.agg, VoteKeys: voteKeys, BatchVotes: a.agg,
		}
		switch a.proto {
		case "pbft":
			reps[i] = pbft.New(cfg)
		case "hotstuff":
			reps[i] = hotstuff.New(cfg)
		default:
			return fmt.Errorf("E15: unknown protocol %q", a.proto)
		}
		reps[i].Start()
	}
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
	}()

	mode, sigs := "counted", "off"
	if a.agg {
		mode = "aggregated"
	}
	if a.signed {
		sigs = "schnorr"
	}

	// Warm up one decision so startup cost stays out of the measurement.
	warm := fmt.Sprintf("e15-%s-%s-%d-warmup", a.proto, mode, a.n)
	reps[0].Submit(warm, types.HashBytes([]byte(warm)))
	if got := consensus.WaitDecisions(reps[0].Decisions(), 1, 60*time.Second); len(got) != 1 {
		return fmt.Errorf("E15: %s/%s n=%d never committed its warm-up decision", a.proto, mode, a.n)
	}
	net.ResetStats()

	done := make(chan int, 1)
	go func() {
		got := consensus.WaitDecisions(reps[0].Decisions(), a.decisions, 180*time.Second)
		done <- len(got)
	}()
	for i := 0; i < a.decisions; i++ {
		v := fmt.Sprintf("e15-%s-%s-%d-%d", a.proto, mode, a.n, i)
		reps[0].Submit(v, types.HashBytes([]byte(v)))
	}
	got := <-done
	stats := net.StatsSnapshot()

	msgsPer := "-"
	if got > 0 {
		msgsPer = fmt.Sprintf("%.1f", float64(stats.Sent)/float64(got))
	}
	p50, p95 := "-", "-"
	if hs, ok := o.Reg.Snapshot().Histograms[a.proto+"/commit_latency"]; ok && hs.Count > 0 {
		p50 = time.Duration(hs.P50).Round(10 * time.Microsecond).String()
		p95 = time.Duration(hs.P95).Round(10 * time.Microsecond).String()
	}
	t.AddRow(a.proto, mode, a.n, sigs, fmt.Sprintf("%d/%d", got, a.decisions), msgsPer, p50, p95)
	if got != a.decisions {
		return fmt.Errorf("E15: %s/%s n=%d decided %d/%d", a.proto, mode, a.n, got, a.decisions)
	}
	return nil
}
