package bench

import (
	"fmt"
	"sync"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/hotstuff"
	"permchain/internal/consensus/ibft"
	"permchain/internal/consensus/paxos"
	"permchain/internal/consensus/pbft"
	"permchain/internal/consensus/raft"
	"permchain/internal/consensus/tendermint"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/cluster"
	"permchain/internal/sharding/resilientdb"
	"permchain/internal/sharding/saguaro"
	"permchain/internal/sharding/sharper"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// driveSharded pushes a sharded workload through a system with per-shard
// submitter goroutines and returns throughput.
func driveSharded(txs []*types.Transaction, workers int,
	submitIntra, submitCross func(*types.Transaction) error) (time.Duration, int, int) {
	var wg sync.WaitGroup
	queue := make(chan *types.Transaction, len(txs))
	for _, tx := range txs {
		queue <- tx
	}
	close(queue)
	var mu sync.Mutex
	committed, aborted := 0, 0
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tx := range queue {
				var err error
				if tx.Kind == types.TxCross {
					err = submitCross(tx)
				} else {
					err = submitIntra(tx)
				}
				mu.Lock()
				if err == nil {
					committed++
				} else {
					aborted++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return time.Since(start), committed, aborted
}

// E6ShardingScaling reproduces the §2.3.4 Discussion scaling comparison:
// throughput vs cluster count for single-ledger (ResilientDB) vs sharded
// coordinator-based (AHL) vs sharded flattened (SharPer), across
// cross-shard fractions.
func E6ShardingScaling(txPerShard int, shardCounts []int, crossFracs []float64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "scalability: throughput vs cluster count and cross-shard fraction",
		Claim:   "sharded designs scale near-linearly at low cross-shard fractions; single-ledger replication does not add capacity with more clusters; cross-shard coordination erodes sharded throughput",
		Columns: []string{"system", "clusters", "cross %", "tps", "committed", "aborted", "storage (keys, all clusters)"},
	}
	for _, shards := range shardCounts {
		total := txPerShard * shards
		// Offered load scales with the system: 8 concurrent clients per
		// shard, matching how the surveyed papers scale their clients.
		workers := 8 * shards

		// Single-ledger ResilientDB: no cross-shard concept; every cluster
		// replicates everything.
		func() {
			alloc := cluster.NewAllocator(network.New())
			sys := resilientdb.New(alloc, shards, cluster.Options{DisableSig: true})
			defer sys.Stop()
			gen := workload.New(7)
			txs := gen.Sharded(workload.ShardedConfig{Txs: total, Shards: shards, CrossFraction: 0})
			start := time.Now()
			for i, tx := range txs {
				sys.Submit(i%shards, tx)
			}
			if !sys.AwaitExecuted(total, 120*time.Second) {
				t.AddRow("ResilientDB", shards, "-", "STALLED", sys.ExecutedCount(), 0, sys.TotalStorage())
				return
			}
			dur := time.Since(start)
			t.AddRow("ResilientDB", shards, "-", tps(total, dur), total, 0, sys.TotalStorage())
		}()

		for _, cf := range crossFracs {
			gen := workload.New(7)
			txs := gen.Sharded(workload.ShardedConfig{Txs: total, Shards: shards, CrossFraction: cf})

			func() {
				alloc := cluster.NewAllocator(network.New())
				sys := ahl.New(alloc, ahl.Options{Shards: shards, Attested: true, DisableSig: true})
				defer sys.Stop()
				dur, committed, aborted := driveSharded(txs, workers, sys.SubmitIntra, sys.SubmitCross)
				t.AddRow("AHL (2PC+ref committee)", shards, fmt.Sprintf("%.0f%%", cf*100),
					tps(committed, dur), committed, aborted, sys.TotalStorage())
			}()

			func() {
				gen2 := workload.New(7)
				txs2 := gen2.Sharded(workload.ShardedConfig{Txs: total, Shards: shards, CrossFraction: cf})
				alloc := cluster.NewAllocator(network.New())
				sys := sharper.New(alloc, sharper.Options{Shards: shards, DisableSig: true})
				defer sys.Stop()
				dur, committed, aborted := driveSharded(txs2, workers, sys.SubmitIntra, sys.SubmitCross)
				t.AddRow("SharPer (flattened)", shards, fmt.Sprintf("%.0f%%", cf*100),
					tps(committed, dur), committed, aborted, sys.TotalStorage())
			}()
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d txs per shard, 8 client workers per shard; AHL committees are attested (2f+1=3 nodes), SharPer clusters 3f+1=4", txPerShard),
		"storage column: single-ledger grows with clusters × keys; sharded stays ≈ keys")
	return t, nil
}

// E7CrossShardLatency reproduces the cross-shard latency comparison:
// coordinator-based (AHL, most coordinator↔shard crossings through a
// fixed root committee) vs flattened (SharPer, one round trip between the
// involved clusters, distance-sensitive) vs hierarchical (Saguaro, same
// 2PC structure as AHL but the LCA coordinator sits near the involved
// edges).
//
// WAN latency is modeled at protocol level: each coordinator↔cluster
// message crossing sleeps hops × unit, where hops follow the tree
// topology (4 edge shards, 2 fog, 1 root). Intra-cluster links carry
// unit/10 on the simulated transport.
func E7CrossShardLatency(perPair int, unit time.Duration) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "cross-shard transaction latency under WAN inter-cluster latency",
		Claim:   "centralized 2PC pays the most coordinator crossings (through a distant fixed committee); flattened consensus pays fewer but depends on inter-shard distance; the LCA coordinator keeps nearby-shard txs near-edge-local",
		Columns: []string{"system", "shard pair", "coordinator", "avg latency", "vs intra-shard"},
	}

	// Tree distances (hops): leaves 0,1 under fog A; 2,3 under fog B.
	leafDist := func(a, b types.ShardID) int {
		if a == b {
			return 0
		}
		if a/2 == b/2 {
			return 2 // via shared fog
		}
		return 4 // via root
	}
	// Distance from any leaf to the root is 2 hops (leaf → fog → root).
	const leafToRoot = 2

	crossTx := func(id string, a, b types.ShardID, k int) *types.Transaction {
		return &types.Transaction{
			ID: id, Kind: types.TxCross, Shards: []types.ShardID{a, b},
			Ops: []types.Op{
				{Code: types.OpAdd, Key: workload.ShardKey(a, k), Delta: 1},
				{Code: types.OpAdd, Key: workload.ShardKey(b, k), Delta: 1},
			},
		}
	}
	intraTx := func(id string, a types.ShardID, k int) *types.Transaction {
		return &types.Transaction{
			ID: id, Kind: types.TxInternal, Shards: []types.ShardID{a},
			Ops: []types.Op{{Code: types.OpAdd, Key: workload.ShardKey(a, k), Delta: 1}},
		}
	}
	pairs := []struct {
		a, b types.ShardID
		name string
	}{
		{0, 1, "near (same fog)"},
		{0, 3, "far (cross fog)"},
	}

	measureIntra := func(submit func(*types.Transaction) error, prefix string) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < perPair; i++ {
			tx := intraTx(fmt.Sprintf("%s-intra-%d", prefix, i), 0, i)
			start := time.Now()
			if err := submit(tx); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return total / time.Duration(perPair), nil
	}
	measureCross := func(submit func(*types.Transaction) error, prefix string, a, b types.ShardID) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < perPair; i++ {
			tx := crossTx(fmt.Sprintf("%s-%v%v-%d", prefix, a, b, i), a, b, i)
			start := time.Now()
			if err := submit(tx); err != nil {
				return 0, err
			}
			total += time.Since(start)
		}
		return total / time.Duration(perPair), nil
	}

	// ---- AHL: fixed reference committee at the root -----------------------
	{
		alloc := cluster.NewAllocator(network.New(network.WithUniformLatency(unit / 10)))
		sys := ahl.New(alloc, ahl.Options{
			Shards: 4, Attested: true, DisableSig: true,
			InterClusterDelay: func(a, b types.ShardID) time.Duration {
				// Cluster id 4 is the reference committee, placed at the root.
				if a == 4 || b == 4 {
					return leafToRoot * unit
				}
				return time.Duration(leafDist(a, b)) * unit
			},
		})
		intraAvg, err := measureIntra(sys.SubmitIntra, "ahl")
		if err != nil {
			sys.Stop()
			return nil, err
		}
		for _, p := range pairs {
			avg, err := measureCross(sys.SubmitCross, "ahl", p.a, p.b)
			if err != nil {
				sys.Stop()
				return nil, err
			}
			t.AddRow("AHL", p.name, "reference committee (root)", avg, ratio(avg, intraAvg))
		}
		sys.Stop()
	}

	// ---- SharPer: flattened among involved clusters ------------------------
	{
		alloc := cluster.NewAllocator(network.New(network.WithUniformLatency(unit / 10)))
		sys := sharper.New(alloc, sharper.Options{
			Shards: 4, DisableSig: true,
			InterClusterDelay: func(a, b types.ShardID) time.Duration {
				return time.Duration(leafDist(a, b)) * unit
			},
		})
		intraAvg, err := measureIntra(sys.SubmitIntra, "shp")
		if err != nil {
			sys.Stop()
			return nil, err
		}
		for _, p := range pairs {
			avg, err := measureCross(sys.SubmitCross, "shp", p.a, p.b)
			if err != nil {
				sys.Stop()
				return nil, err
			}
			t.AddRow("SharPer", p.name, "none (flattened)", avg, ratio(avg, intraAvg))
		}
		sys.Stop()
	}

	// ---- Saguaro: LCA coordinator -------------------------------------------
	{
		alloc := cluster.NewAllocator(network.New(network.WithUniformLatency(unit / 10)))
		var sys *saguaro.System
		sys = saguaro.New(alloc, saguaro.Options{
			Levels: 3, Fanout: 2, DisableSig: true,
			InterClusterDelay: func(a, b int) time.Duration {
				return time.Duration(sys.TreeDistance(a, b)) * unit
			},
		})
		intraAvg, err := measureIntra(sys.SubmitIntra, "sag")
		if err != nil {
			sys.Stop()
			return nil, err
		}
		for _, p := range pairs {
			coordName := "fog (LCA, 1 hop)"
			if sys.LCA([]types.ShardID{p.a, p.b}) == 0 {
				coordName = "root (LCA, 2 hops)"
			}
			avg, err := measureCross(sys.SubmitCross, "sag", p.a, p.b)
			if err != nil {
				sys.Stop()
				return nil, err
			}
			t.AddRow("Saguaro", p.name, coordName, avg, ratio(avg, intraAvg))
		}
		sys.Stop()
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("topology: 4 edge shards, 2 fog, 1 root; 1 WAN hop = %v one-way; intra-cluster link = %v; %d txs per pair", unit, unit/10, perPair),
		"AHL pays 3 RC↔shard crossings per shard through the root; Saguaro pays the same pattern through the (closer) LCA; SharPer pays 1 round trip between the involved shards")
	return t, nil
}

func ratio(a, b time.Duration) string {
	if b <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// E8ConsensusProtocols compares the six ordering protocols (§2.2/§2.3.3):
// decision throughput and network messages per decision.
func E8ConsensusProtocols(decisions, n int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("consensus protocols at n=%d: throughput and message complexity", n),
		Claim:   "PBFT-family protocols pay O(n²) messages per decision; HotStuff is linear; crash-fault protocols (Raft/Paxos) are cheapest but tolerate no Byzantine nodes",
		Columns: []string{"protocol", "fault model", "decisions/s", "msgs/decision", "commit latency"},
	}
	// One registry serves all six protocols: metric names are
	// protocol-prefixed, so their histograms stay separable.
	o := obs.New()
	protos := []struct {
		name  string
		fault string
		mk    func(cfg consensus.Config) consensus.Replica
	}{
		{"pbft", "byzantine", func(cfg consensus.Config) consensus.Replica { return pbft.New(cfg) }},
		{"ibft", "byzantine", func(cfg consensus.Config) consensus.Replica { return ibft.New(cfg) }},
		{"tendermint", "byzantine (PoS)", func(cfg consensus.Config) consensus.Replica {
			return tendermint.New(tendermint.Config{Config: cfg})
		}},
		{"hotstuff", "byzantine", func(cfg consensus.Config) consensus.Replica { return hotstuff.New(cfg) }},
		{"raft", "crash", func(cfg consensus.Config) consensus.Replica { return raft.New(cfg) }},
		{"paxos", "crash", func(cfg consensus.Config) consensus.Replica { return paxos.New(cfg) }},
	}
	for _, p := range protos {
		net := network.New()
		keys := crypto.NewKeyring(n)
		ids := make([]types.NodeID, n)
		for i := range ids {
			ids[i] = types.NodeID(i)
		}
		reps := make([]consensus.Replica, n)
		for i := range reps {
			reps[i] = p.mk(consensus.Config{
				Self: ids[i], Nodes: ids, Net: net, Keys: keys,
				Timeout: 2 * time.Second, DisableSig: true,
				Obs: o,
			})
			reps[i].Start()
		}
		// Warm up: let elections settle and the pipeline prime before the
		// clock starts, so startup latency (e.g. Raft's randomized first
		// election) does not skew steady-state throughput.
		warm := p.name + "-warmup"
		reps[0].Submit(warm, types.HashBytes([]byte(warm)))
		consensus.WaitDecisions(reps[0].Decisions(), 1, 30*time.Second)
		net.ResetStats()
		start := time.Now()
		done := make(chan int, 1)
		go func() {
			got := consensus.WaitDecisions(reps[0].Decisions(), decisions, 120*time.Second)
			done <- len(got)
		}()
		for i := 0; i < decisions; i++ {
			v := fmt.Sprintf("%s-%d", p.name, i)
			reps[0].Submit(v, types.HashBytes([]byte(v)))
		}
		got := <-done
		dur := time.Since(start)
		stats := net.StatsSnapshot()
		msgsPer := "-"
		if got > 0 {
			msgsPer = fmt.Sprintf("%.0f", float64(stats.Sent)/float64(got))
		}
		commitLat := "-"
		if hs, ok := o.Reg.Snapshot().Histograms[p.name+"/commit_latency"]; ok && hs.Count > 0 {
			commitLat = fmt.Sprintf("p50=%v p95=%v",
				time.Duration(hs.P50).Round(10*time.Microsecond),
				time.Duration(hs.P95).Round(10*time.Microsecond))
		}
		t.AddRow(p.name, p.fault, tps(got, dur), msgsPer, commitLat)
		for _, r := range reps {
			r.Stop()
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d decisions, signatures disabled to isolate protocol logic", decisions),
		"commit latency is the propose→commit phase histogram from the shared metrics registry")
	t.attachMetrics(o)
	return t, nil
}
