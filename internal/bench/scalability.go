package bench

import (
	"fmt"
	"sync"
	"time"

	"permchain/internal/consensus"
	"permchain/internal/consensus/hotstuff"
	"permchain/internal/consensus/ibft"
	"permchain/internal/consensus/paxos"
	"permchain/internal/consensus/pbft"
	"permchain/internal/consensus/raft"
	"permchain/internal/consensus/tendermint"
	"permchain/internal/core"
	"permchain/internal/crypto"
	"permchain/internal/network"
	"permchain/internal/obs"
	"permchain/internal/sharding/ahl"
	"permchain/internal/sharding/resilientdb"
	"permchain/internal/sharding/saguaro"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/sharper"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// shardedConfig is the deployment shape the scaling experiments run on:
// each shard is a full 4-node chain with small blocks and a short flush
// deadline, signatures off to isolate coordination structure.
func shardedConfig(shards int, protocol string) core.Config {
	return core.Config{
		Nodes:      4,
		BlockSize:  32,
		FlushEvery: 2 * time.Millisecond,
		DisableSig: true,
		Sharding: &core.ShardingConfig{
			Shards:       shards,
			Protocol:     protocol,
			CrossTimeout: 60 * time.Second,
		},
	}
}

// driveSharded pushes a workload through a sharded chain with the given
// number of client workers, waiting out every spanning receipt, and
// returns the wall time plus commit/abort counts.
func driveSharded(s *shardcore.Chain, txs []*types.Transaction, workers int) (time.Duration, int, int) {
	var wg sync.WaitGroup
	queue := make(chan *types.Transaction, len(txs))
	for _, tx := range txs {
		queue <- tx
	}
	close(queue)
	var mu sync.Mutex
	committed, aborted := 0, 0
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tx := range queue {
				r, err := s.SubmitAsync(tx)
				if err == nil {
					err = r.Wait(120 * time.Second)
				}
				mu.Lock()
				if err == nil {
					committed++
				} else {
					aborted++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return time.Since(start), committed, aborted
}

// E6ShardingScaling reproduces the §2.3.4 Discussion scaling comparison:
// throughput vs shard count for single-ledger (ResilientDB) vs sharded
// coordinator-based (AHL) vs sharded flattened (SharPer), across
// cross-shard fractions. Every system runs on the same shardcore
// deployment shape — per-shard 4-node chains — differing only in the
// CrossShardProtocol strategy, so the rows isolate coordination
// structure rather than implementation accidents.
func E6ShardingScaling(txPerShard int, shardCounts []int, crossFracs []float64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "scalability: throughput vs shard count and cross-shard fraction",
		Claim:   "sharded designs scale near-linearly at low cross-shard fractions; single-ledger replication does not add capacity with more shards; cross-shard coordination erodes sharded throughput",
		Columns: []string{"system", "shards", "cross %", "tps", "committed", "aborted", "storage (keys, all shards)"},
	}
	run := func(label, protocol string, shards int, cf float64, crossLabel string) error {
		cfg := shardedConfig(shards, protocol)
		s, err := shardcore.New(cfg, mustResolve(cfg))
		if err != nil {
			return err
		}
		s.Start()
		defer s.Stop()
		gen := workload.New(7)
		txs := gen.Sharded(workload.ShardedConfig{Txs: txPerShard * shards, Shards: shards, CrossFraction: cf})
		dur, committed, aborted := driveSharded(s, txs, 8*shards)
		t.AddRow(label, shards, crossLabel, tps(committed, dur), committed, aborted, s.TotalStorage())
		return nil
	}
	for _, shards := range shardCounts {
		// Single-ledger ResilientDB: no cross-shard concept; every shard
		// replicates everything, so capacity stays flat as shards grow.
		if err := run("ResilientDB (single ledger)", "resilientdb", shards, 0, "-"); err != nil {
			return nil, err
		}
		for _, cf := range crossFracs {
			crossLabel := fmt.Sprintf("%.0f%%", cf*100)
			if err := run("AHL (2PC+ref chain)", "ahl", shards, cf, crossLabel); err != nil {
				return nil, err
			}
			if err := run("SharPer (flattened)", "sharper", shards, cf, crossLabel); err != nil {
				return nil, err
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d txs per shard, 8 client workers per shard; every shard is a full 4-node chain", txPerShard),
		"storage column: single-ledger grows with shards × keys; partitioned stays ≈ keys")
	return t, nil
}

// mustResolve maps the config's protocol name to its strategy; E6 only
// uses registered names, so failure here is a programming error.
func mustResolve(cfg core.Config) shardcore.CrossShardProtocol {
	switch cfg.Sharding.Protocol {
	case "ahl":
		return ahl.New()
	case "saguaro":
		return saguaro.New(cfg.Sharding.Fanout)
	case "resilientdb":
		return resilientdb.New()
	default:
		return sharper.New()
	}
}

// E7CrossShardLatency reproduces the cross-shard latency comparison:
// coordinator-based (AHL, every coordination round through a fixed
// reference chain at the root) vs flattened (SharPer, rounds only in the
// involved shards, distance-sensitive) vs hierarchical (Saguaro, same
// 2PC structure as AHL but the coordinator is the LCA of the involved
// edges).
//
// WAN latency is modeled at protocol level: each coordinator↔shard
// phase crossing sleeps hops × unit, where hops follow the tree
// topology (4 edge shards, 2 fog, 1 root). Intra-shard committee links
// carry unit/10 on the simulated transport.
func E7CrossShardLatency(perPair int, unit time.Duration) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "cross-shard transaction latency under WAN inter-shard latency",
		Claim:   "centralized 2PC pays the most coordinator crossings (through a distant fixed committee); flattened consensus pays fewer but depends on inter-shard distance; the LCA coordinator keeps nearby-shard txs near-edge-local",
		Columns: []string{"system", "shard pair", "coordinator", "avg latency", "vs intra-shard"},
	}

	// Tree distances (hops): leaves 0,1 under fog A; 2,3 under fog B.
	leafDist := func(a, b types.ShardID) time.Duration {
		switch {
		case a == b:
			return 0
		case a/2 == b/2:
			return 2 * unit // via shared fog
		default:
			return 4 * unit // via root
		}
	}
	// Distance from any leaf to the root is 2 hops (leaf → fog → root).
	leafToRoot := 2 * unit

	pairs := []struct {
		a, b types.ShardID
		name string
	}{
		{0, 1, "near (same fog)"},
		{0, 3, "far (cross fog)"},
	}

	crossTx := func(id string, a, b types.ShardID, k int) *types.Transaction {
		return &types.Transaction{ID: id, Ops: []types.Op{
			{Code: types.OpAdd, Key: workload.ShardKey(a, k), Delta: 1},
			{Code: types.OpAdd, Key: workload.ShardKey(b, k), Delta: 1},
		}}
	}
	intraTx := func(id string, a types.ShardID, k int) *types.Transaction {
		return &types.Transaction{ID: id, Ops: []types.Op{
			{Code: types.OpAdd, Key: workload.ShardKey(a, k), Delta: 1},
		}}
	}
	measure := func(s *shardcore.Chain, mk func(i int) *types.Transaction) (time.Duration, error) {
		var total time.Duration
		for i := 0; i < perPair; i++ {
			tx := mk(i)
			start := time.Now()
			r, err := s.SubmitAsync(tx)
			if err == nil {
				err = r.Wait(120 * time.Second)
			}
			if err != nil {
				return 0, fmt.Errorf("E7 %s: %w", tx.ID, err)
			}
			total += time.Since(start)
		}
		return total / time.Duration(perPair), nil
	}

	systems := []struct {
		name  string
		proto shardcore.CrossShardProtocol
		coord func(a, b types.ShardID) string
	}{
		{"AHL", ahl.Strategy{DelayFn: func(a, b types.ShardID) time.Duration {
			// Shard id 4 is the reference chain, placed at the root.
			if a == 4 || b == 4 {
				return leafToRoot
			}
			return leafDist(a, b)
		}}, func(a, b types.ShardID) string { return "reference chain (root)" }},
		{"SharPer", sharper.Strategy{DelayFn: leafDist},
			func(a, b types.ShardID) string { return "none (flattened)" }},
		{"Saguaro", saguaro.Strategy{Fanout: 2, HopDelay: unit, Shards: 4},
			func(a, b types.ShardID) string {
				sg := saguaro.Strategy{Fanout: 2}
				if sg.LCA([]types.ShardID{a, b}, 4) == 0 {
					return "root (LCA, 2 hops)"
				}
				return "fog (LCA, 1 hop)"
			}},
	}
	for _, sys := range systems {
		cfg := shardedConfig(4, sys.name)
		cfg.Sharding.IntraShardLatency = unit / 10
		s, err := shardcore.New(cfg, sys.proto)
		if err != nil {
			return nil, err
		}
		s.Start()
		intraAvg, err := measure(s, func(i int) *types.Transaction {
			return intraTx(fmt.Sprintf("%s-intra-%d", sys.name, i), 0, i)
		})
		if err != nil {
			s.Stop()
			return nil, err
		}
		for _, p := range pairs {
			avg, err := measure(s, func(i int) *types.Transaction {
				return crossTx(fmt.Sprintf("%s-%v%v-%d", sys.name, p.a, p.b, i), p.a, p.b, i+perPair)
			})
			if err != nil {
				s.Stop()
				return nil, err
			}
			t.AddRow(sys.name, p.name, sys.coord(p.a, p.b), avg, ratio(avg, intraAvg))
		}
		s.Stop()
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("topology: 4 edge shards, 2 fog, 1 root; 1 WAN hop = %v one-way; intra-shard committee link = %v; %d txs per pair", unit, unit/10, perPair),
		"AHL pays every 2PC phase through the root reference chain; Saguaro pays the same pattern through the (closer) LCA; SharPer pays only the involved shards' rounds")
	return t, nil
}

func ratio(a, b time.Duration) string {
	if b <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// E8ConsensusProtocols compares the six ordering protocols (§2.2/§2.3.3):
// decision throughput and network messages per decision.
func E8ConsensusProtocols(decisions, n int) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("consensus protocols at n=%d: throughput and message complexity", n),
		Claim:   "PBFT-family protocols pay O(n²) messages per decision; HotStuff is linear; crash-fault protocols (Raft/Paxos) are cheapest but tolerate no Byzantine nodes",
		Columns: []string{"protocol", "fault model", "decisions/s", "msgs/decision", "commit latency"},
	}
	// One registry serves all six protocols: metric names are
	// protocol-prefixed, so their histograms stay separable.
	o := obs.New()
	protos := []struct {
		name  string
		fault string
		mk    func(cfg consensus.Config) consensus.Replica
	}{
		{"pbft", "byzantine", func(cfg consensus.Config) consensus.Replica { return pbft.New(cfg) }},
		{"ibft", "byzantine", func(cfg consensus.Config) consensus.Replica { return ibft.New(cfg) }},
		{"tendermint", "byzantine (PoS)", func(cfg consensus.Config) consensus.Replica {
			return tendermint.New(tendermint.Config{Config: cfg})
		}},
		{"hotstuff", "byzantine", func(cfg consensus.Config) consensus.Replica { return hotstuff.New(cfg) }},
		{"raft", "crash", func(cfg consensus.Config) consensus.Replica { return raft.New(cfg) }},
		{"paxos", "crash", func(cfg consensus.Config) consensus.Replica { return paxos.New(cfg) }},
	}
	for _, p := range protos {
		net := network.New()
		keys := crypto.NewKeyring(n)
		ids := make([]types.NodeID, n)
		for i := range ids {
			ids[i] = types.NodeID(i)
		}
		reps := make([]consensus.Replica, n)
		for i := range reps {
			reps[i] = p.mk(consensus.Config{
				Self: ids[i], Nodes: ids, Net: net, Keys: keys,
				Timeout: 2 * time.Second, DisableSig: true,
				Obs: o,
			})
			reps[i].Start()
		}
		// Warm up: let elections settle and the pipeline prime before the
		// clock starts, so startup latency (e.g. Raft's randomized first
		// election) does not skew steady-state throughput.
		warm := p.name + "-warmup"
		reps[0].Submit(warm, types.HashBytes([]byte(warm)))
		consensus.WaitDecisions(reps[0].Decisions(), 1, 30*time.Second)
		net.ResetStats()
		start := time.Now()
		done := make(chan int, 1)
		go func() {
			got := consensus.WaitDecisions(reps[0].Decisions(), decisions, 120*time.Second)
			done <- len(got)
		}()
		for i := 0; i < decisions; i++ {
			v := fmt.Sprintf("%s-%d", p.name, i)
			reps[0].Submit(v, types.HashBytes([]byte(v)))
		}
		got := <-done
		dur := time.Since(start)
		stats := net.StatsSnapshot()
		msgsPer := "-"
		if got > 0 {
			msgsPer = fmt.Sprintf("%.0f", float64(stats.Sent)/float64(got))
		}
		commitLat := "-"
		if hs, ok := o.Reg.Snapshot().Histograms[p.name+"/commit_latency"]; ok && hs.Count > 0 {
			commitLat = fmt.Sprintf("p50=%v p95=%v",
				time.Duration(hs.P50).Round(10*time.Microsecond),
				time.Duration(hs.P95).Round(10*time.Microsecond))
		}
		t.AddRow(p.name, p.fault, tps(got, dur), msgsPer, commitLat)
		for _, r := range reps {
			r.Stop()
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d decisions, signatures disabled to isolate protocol logic", decisions),
		"commit latency is the propose→commit phase histogram from the shared metrics registry")
	t.attachMetrics(o)
	return t, nil
}
