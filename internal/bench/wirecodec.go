package bench

import (
	"fmt"
	"math/big"
	"testing"
	"time"

	"permchain/internal/core"
	"permchain/internal/network"
	"permchain/internal/quorumcert"
	"permchain/internal/statedb"
	"permchain/internal/types"
	"permchain/internal/wire"
)

// E17WireCodec measures the zero-copy wire codec and the allocation-free
// hot path (DESIGN.md, "Wire format"), in four arms:
//
//   - frame: encode/decode cost, frame size, and allocs/op for the
//     shared payload codecs (transaction, Schnorr partial, quorum cert).
//     Steady-state encode must be allocation-free for all three, and
//     decode-into-scratch allocation-free for partial and cert — the
//     hard gates the refactor was done for.
//   - bytes/msg: serialized payload size per protocol, measured from a
//     live 4-node wire-mode cluster of each ordering protocol.
//   - executor: allocs per executed transaction, map-based Simulate vs
//     the slice-based SimulateList the engines now run. The list path
//     must allocate at most half of the map path.
//   - pipeline: end-to-end pipelined throughput of the identical
//     workload over struct-pointer vs wire-codec transport. Serializing
//     every message must cost at most a noise-level slowdown.
func E17WireCodec(quick bool) (*Table, error) {
	iters := 200000
	clusterTxs := 240
	pipeTxs := 1200
	if quick {
		iters = 20000
		clusterTxs = 60
		pipeTxs = 600
	}

	tbl := &Table{
		ID:      "E17",
		Title:   "zero-copy wire codec: frame cost, per-protocol message size, executor and transport allocation profile",
		Claim:   "a length-prefixed binary codec with pooled buffers serializes every consensus payload without steady-state allocation, and the slice-based executor path halves allocs/tx — so serialized transport costs no measurable throughput",
		Columns: []string{"arm", "case", "result", "detail"},
	}

	if err := e17Frames(tbl, iters); err != nil {
		return tbl, err
	}
	if err := e17BytesPerMsg(tbl, clusterTxs); err != nil {
		return tbl, err
	}
	if err := e17Executor(tbl); err != nil {
		return tbl, err
	}
	if err := e17Pipeline(tbl, pipeTxs); err != nil {
		return tbl, err
	}

	tbl.Notes = append(tbl.Notes,
		"frame arm: encode into a pooled encoder, decode into a reused scratch value; allocs measured with testing.AllocsPerRun",
		"tx decode allocates by design: decoded strings and read/write maps are owned by the receiver, never aliased to the pooled frame",
		"bytes/msg arm: 4-node wire-mode cluster per protocol; bytes are serialized payload frames, envelopes excluded",
		"executor arm: identical payload through map-based Simulate and slice-based SimulateList with a reused scratch",
		"pipeline arm: identical PBFT/OX workload; the wire arm serializes every message through the codec")
	return tbl, nil
}

// e17Frames measures the shared payload codecs and enforces the
// allocs/op gates.
func e17Frames(tbl *Table, iters int) error {
	tx := &types.Transaction{
		ID: "e17-tx", Client: 3, Kind: types.TxCross,
		Shards: []types.ShardID{0, 1},
		Ops: []types.Op{
			{Code: types.OpAdd, Key: "account-a", Delta: 5},
			{Code: types.OpTransfer, Key: "account-a", Key2: "account-b", Delta: 2},
		},
	}
	partial := quorumcert.Partial{Signer: 2, R: big.NewInt(1 << 40), S: big.NewInt(99)}
	cert := quorumcert.QuorumCert{
		Statement: quorumcert.Statement{Domain: "pbft/prepare", View: 3, Seq: 17,
			Digest: types.HashBytes([]byte("e17"))},
		Bitmap: []uint64{0b1011},
		R:      big.NewInt(12345), S: big.NewInt(67890),
	}
	wire.Intern(cert.Statement.Domain)

	e := wire.GetEncoder()
	defer wire.PutEncoder(e)

	type frameCase struct {
		name    string
		enc     func()
		dec     func() error
		gateDec bool // decode-into must also be allocation-free
	}
	txScratch := wire.AcquireTx()
	defer wire.ReleaseTx(txScratch)
	var partialScratch quorumcert.Partial
	var certScratch quorumcert.QuorumCert
	var frame []byte
	cases := []frameCase{
		{"tx", func() { wire.TxCodec.EncodeFrame(e, &tx) },
			func() error { return wire.TxCodec.DecodeFrameInto(frame, &txScratch) }, false},
		{"qc-partial", func() { quorumcert.PartialCodec.EncodeFrame(e, &partial) },
			func() error { return quorumcert.PartialCodec.DecodeFrameInto(frame, &partialScratch) }, true},
		{"qc-cert", func() { quorumcert.CertCodec.EncodeFrame(e, &cert) },
			func() error { return quorumcert.CertCodec.DecodeFrameInto(frame, &certScratch) }, true},
	}

	for _, c := range cases {
		e.Reset()
		c.enc() // warm the pooled buffer
		frame = append([]byte(nil), e.Frame()...)
		if err := c.dec(); err != nil {
			return fmt.Errorf("E17 %s: decode: %w", c.name, err)
		}

		encAllocs := testing.AllocsPerRun(200, func() {
			e.Reset()
			c.enc()
		})
		decAllocs := testing.AllocsPerRun(200, func() {
			if err := c.dec(); err != nil {
				panic(err)
			}
		})
		start := time.Now()
		for i := 0; i < iters; i++ {
			e.Reset()
			c.enc()
		}
		encNs := time.Since(start) / time.Duration(iters)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := c.dec(); err != nil {
				return fmt.Errorf("E17 %s: decode: %w", c.name, err)
			}
		}
		decNs := time.Since(start) / time.Duration(iters)

		tbl.AddRow("frame", c.name, fmt.Sprintf("%d B/frame", len(frame)),
			fmt.Sprintf("enc %v, %.0f allocs; dec %v, %.0f allocs", encNs, encAllocs, decNs, decAllocs))
		if encAllocs != 0 {
			return fmt.Errorf("E17 %s: steady-state encode allocates %.1f/op, want 0", c.name, encAllocs)
		}
		if c.gateDec && decAllocs != 0 {
			return fmt.Errorf("E17 %s: steady-state decode-into allocates %.1f/op, want 0", c.name, decAllocs)
		}
	}
	return nil
}

// e17BytesPerMsg runs a short wire-mode cluster per protocol and reports
// the average serialized payload size.
func e17BytesPerMsg(tbl *Table, txs int) error {
	for _, p := range []core.Protocol{core.PBFT, core.Raft, core.Paxos,
		core.Tendermint, core.HotStuff, core.IBFT} {
		cfg := core.Config{Nodes: 4, Protocol: p, Arch: core.OX, BlockSize: 8,
			WireCodec: true, Timeout: 300 * time.Millisecond}
		c, err := core.New(cfg)
		if err != nil {
			return fmt.Errorf("E17 %s: %w", p, err)
		}
		c.Start()
		for i := 0; i < txs; i++ {
			tx := &types.Transaction{ID: fmt.Sprintf("e17-%s-%d", p, i),
				Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("k%d", i%17), Delta: 1}}}
			if err := c.Submit(tx); err != nil {
				c.Stop()
				return fmt.Errorf("E17 %s: %w", p, err)
			}
		}
		c.Flush()
		ok := c.Await(core.AwaitSpec{Txs: txs, Timeout: 60 * time.Second})
		verr := c.VerifyReplication()
		stats := c.Network().StatsSnapshot()
		c.Stop()
		if !ok {
			return fmt.Errorf("E17 %s: cluster stalled", p)
		}
		if verr != nil {
			return fmt.Errorf("E17 %s: %w", p, verr)
		}
		if n := stats.ByCause[network.DropCodec]; n != 0 {
			return fmt.Errorf("E17 %s: %d payloads failed the codec", p, n)
		}
		if stats.Sent == 0 || stats.WireBytesOut == 0 {
			return fmt.Errorf("E17 %s: no serialized traffic (sent=%d bytes=%d)", p, stats.Sent, stats.WireBytesOut)
		}
		tbl.AddRow("bytes/msg", fmt.Sprint(p),
			fmt.Sprintf("%.0f B/msg", float64(stats.WireBytesOut)/float64(stats.Sent)),
			fmt.Sprintf("msgs=%d bytes=%d", stats.Sent, stats.WireBytesOut))
	}
	return nil
}

// e17Executor compares allocs per executed transaction between the map
// facade and the slice path, enforcing the ≥2× drop gate.
func e17Executor(tbl *Table) error {
	s := statedb.New()
	s.Apply(types.Version{Block: 1}, types.WriteSet{
		"a": statedb.EncodeInt(10), "b": statedb.EncodeInt(20)})
	ops := []types.Op{
		{Code: types.OpGet, Key: "a"},
		{Code: types.OpGet, Key: "b"},
		{Code: types.OpAdd, Key: "a", Delta: 1},
		{Code: types.OpAdd, Key: "b", Delta: 2},
		{Code: types.OpGet, Key: "c"},
	}
	mapAllocs := testing.AllocsPerRun(200, func() {
		if res := statedb.Simulate(s, ops); res.Err != nil {
			panic(res.Err)
		}
	})
	sc := statedb.GetScratch()
	defer statedb.PutScratch(sc)
	listAllocs := testing.AllocsPerRun(200, func() {
		if _, _, err := statedb.SimulateList(s, ops, sc); err != nil {
			panic(err)
		}
	})
	drop := mapAllocs / max(listAllocs, 0.01)
	tbl.AddRow("executor", "allocs/tx",
		fmt.Sprintf("map %.1f → list %.1f", mapAllocs, listAllocs),
		fmt.Sprintf("%.1fx drop", drop))
	if listAllocs*2 > mapAllocs {
		return fmt.Errorf("E17 executor: list path allocates %.1f/tx vs map %.1f/tx; want ≥2x drop", listAllocs, mapAllocs)
	}
	return nil
}

// e17Pipeline runs the identical in-memory PBFT/OX workload over both
// transports. Wall-clock noise on sub-second runs can mask parity, so
// the comparison gets a few attempts before declaring a regression.
func e17Pipeline(tbl *Table, txs int) error {
	runArm := func(wireMode bool) (time.Duration, error) {
		cfg := core.Config{Nodes: 4, Protocol: core.PBFT, Arch: core.OX,
			BlockSize: 8, WorkFactor: 800, WireCodec: wireMode,
			Timeout: 300 * time.Millisecond}
		c, err := core.New(cfg)
		if err != nil {
			return 0, err
		}
		c.Start()
		defer c.Stop()
		start := time.Now()
		for i := 0; i < txs; i++ {
			tx := &types.Transaction{ID: fmt.Sprintf("e17p-%d-%v", i, wireMode),
				Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("k%d", i%17), Delta: 1}}}
			if err := c.Submit(tx); err != nil {
				return 0, err
			}
		}
		c.Flush()
		if !c.Await(core.AwaitSpec{Txs: txs, Timeout: 60 * time.Second}) {
			return 0, fmt.Errorf("cluster processed %d/%d", c.Node(0).ProcessedTxs(), txs)
		}
		elapsed := time.Since(start)
		if err := c.VerifyReplication(); err != nil {
			return 0, err
		}
		return elapsed, nil
	}

	const attempts = 3
	var structD, wireD time.Duration
	for try := 1; ; try++ {
		var err error
		if structD, err = runArm(false); err != nil {
			return fmt.Errorf("E17 pipeline struct arm: %w", err)
		}
		if wireD, err = runArm(true); err != nil {
			return fmt.Errorf("E17 pipeline wire arm: %w", err)
		}
		// "Within noise": the wire arm may not lose more than 25% of the
		// struct arm's throughput.
		if tps(txs, wireD) >= 0.75*tps(txs, structD) {
			break
		}
		if try == attempts {
			tbl.AddRow("pipeline", "struct-pointer", fmt.Sprintf("%.0f tps", tps(txs, structD)),
				fmt.Sprintf("txs=%d elapsed=%v", txs, structD.Round(time.Millisecond)))
			tbl.AddRow("pipeline", "wire-codec", fmt.Sprintf("%.0f tps", tps(txs, wireD)),
				fmt.Sprintf("txs=%d elapsed=%v", txs, wireD.Round(time.Millisecond)))
			return fmt.Errorf("E17 pipeline: wire arm %.0f tps lost more than 25%% vs struct arm %.0f tps in %d attempts",
				tps(txs, wireD), tps(txs, structD), attempts)
		}
	}
	tbl.AddRow("pipeline", "struct-pointer", fmt.Sprintf("%.0f tps", tps(txs, structD)),
		fmt.Sprintf("txs=%d elapsed=%v", txs, structD.Round(time.Millisecond)))
	tbl.AddRow("pipeline", "wire-codec", fmt.Sprintf("%.0f tps", tps(txs, wireD)),
		fmt.Sprintf("txs=%d elapsed=%v", txs, wireD.Round(time.Millisecond)))
	return nil
}
