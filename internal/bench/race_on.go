//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation costs roughly an order of magnitude of CPU, which can
// turn latency-bound sweeps (E16) compute-bound on small machines;
// experiments scale their modeled latencies up so the measured regime
// survives instrumentation. Timing-comparison gates (E12) soften from
// "strictly faster" to "no collapse" for the same reason: on a small
// box the serialized race schedule erases the overlap the pipeline
// exists to exploit, while the mechanism counters still prove the
// structure. Normal builds — including the CI benchmark steps — keep
// the strict gates.
const raceEnabled = true
