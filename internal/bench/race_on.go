//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Its
// instrumentation costs roughly an order of magnitude of CPU, which can
// turn latency-bound sweeps (E16) compute-bound on small machines;
// experiments scale their modeled latencies up so the measured regime
// survives instrumentation.
const raceEnabled = true
