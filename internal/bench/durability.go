package bench

import (
	"fmt"
	"os"
	"time"

	"permchain/internal/core"
	"permchain/internal/obs"
	"permchain/internal/store"
	"permchain/internal/types"
)

// E11Durability measures the durable storage engine along its two axes
// (DESIGN.md, "Durability"):
//
//   - append: cluster throughput under each fsync policy. Forcing every
//     block to stable storage (always) costs an fsync per block per node;
//     group syncing (interval) amortizes it; off defers entirely to the
//     OS. The fsync counters make the mechanism visible next to the
//     throughput numbers.
//   - recover: cold-start recovery duration as a function of the snapshot
//     interval. Recovery loads every block from the log but re-executes
//     only the suffix after the newest snapshot, so recovery time shrinks
//     as snapshots get denser while the log length stays fixed.
func E11Durability(quick bool) (*Table, error) {
	txs, blockSize := 600, 8
	if quick {
		txs, blockSize = 120, 8
	}

	tbl := &Table{
		ID:    "E11",
		Title: "durability: fsync policy vs throughput; snapshot interval vs recovery",
		Claim: "forced durability is a first-order throughput cost; recovery is linear in blocks since the last snapshot",
		Columns: []string{"phase", "config", "blocks", "txs", "elapsed", "tps",
			"fsyncs", "segments", "replayed/loaded", "recovery"},
	}

	// Append phase: same workload under each fsync policy.
	fsyncs := map[store.FsyncPolicy]int64{}
	for _, pol := range []store.FsyncPolicy{store.FsyncAlways, store.FsyncInterval, store.FsyncOff} {
		dir, err := os.MkdirTemp("", "permbench-e11-append-*")
		if err != nil {
			return tbl, err
		}
		defer os.RemoveAll(dir)
		po := obs.New()
		elapsed, height, err := runDurable(core.Config{Obs: po, Store: &store.Config{
			Dir: dir, Fsync: pol, FsyncEvery: 2 * time.Millisecond, SegmentBytes: 64 << 10,
		}}, txs, blockSize)
		if err != nil {
			return tbl, fmt.Errorf("fsync=%s: %w", pol, err)
		}
		snap := po.Reg.Snapshot()
		fsyncs[pol] = snap.Counters["store/fsyncs"]
		tbl.AddRow("append", "fsync="+pol.String(), height, txs, elapsed, tps(txs, elapsed),
			snap.Counters["store/fsyncs"], snap.Counters["store/segments_rotated"], "-", "-")
	}
	// The mechanism check is deterministic where timing is not: always
	// syncs once per block per node, so it must dominate both others.
	if fsyncs[store.FsyncAlways] <= fsyncs[store.FsyncInterval] ||
		fsyncs[store.FsyncAlways] <= fsyncs[store.FsyncOff] {
		return tbl, fmt.Errorf("fsync counters out of order: always=%d interval=%d off=%d",
			fsyncs[store.FsyncAlways], fsyncs[store.FsyncInterval], fsyncs[store.FsyncOff])
	}

	// Recovery phase: identical workload, varying snapshot density, then a
	// cold reopen timed by the store/recovery_duration histogram.
	var lastSnap obs.Snapshot
	for _, snapEvery := range []uint64{0, 8, 2} {
		dir, err := os.MkdirTemp("", "permbench-e11-recover-*")
		if err != nil {
			return tbl, err
		}
		defer os.RemoveAll(dir)
		scfg := &store.Config{Dir: dir, Fsync: store.FsyncOff, SnapshotEvery: snapEvery}
		if _, _, err := runDurable(core.Config{Store: scfg}, txs, blockSize); err != nil {
			return tbl, fmt.Errorf("snap-every=%d: %w", snapEvery, err)
		}
		ro := obs.New()
		re, err := core.OpenChain(core.Config{
			Nodes: 4, Protocol: core.PBFT, Arch: core.OX, BlockSize: blockSize,
			Timeout: 300 * time.Millisecond, Obs: ro, Store: scfg,
		})
		if err != nil {
			return tbl, fmt.Errorf("snap-every=%d reopen: %w", snapEvery, err)
		}
		re.Start()
		height := re.Node(0).Chain().Height()
		re.Stop()
		snap := ro.Reg.Snapshot()
		replayed := snap.Counters["store/replayed_blocks"]
		loaded := snap.Counters["store/loaded_blocks"]
		rec := snap.Histograms["store/recovery_duration"]
		tbl.AddRow("recover", fmt.Sprintf("snap-every=%d", snapEvery), height, "-", "-", "-",
			"-", "-", fmt.Sprintf("%d/%d", replayed, loaded), time.Duration(rec.Sum))
		// The replay bound is deterministic even though the block count is
		// not: without snapshots everything replays; with snapshots every k
		// blocks at most k-1 blocks per node do.
		if snapEvery == 0 && replayed != loaded {
			return tbl, fmt.Errorf("snap-every=0 replayed %d of %d loaded blocks", replayed, loaded)
		}
		if max := 4 * int64(snapEvery-1); snapEvery > 0 && replayed > max {
			return tbl, fmt.Errorf("snap-every=%d replayed %d blocks, bound is %d", snapEvery, replayed, max)
		}
		lastSnap = snap
	}

	tbl.Notes = append(tbl.Notes,
		"fsyncs/segments are summed across all nodes' stores (4 nodes)",
		"replayed/loaded: blocks re-executed after the newest snapshot vs blocks loaded into the ledger",
		"recovery is the sum of all nodes' store/recovery_duration observations on reopen")
	tbl.Metrics = &lastSnap
	return tbl, nil
}

// runDurable stands up a 4-node durable PBFT/OX cluster, pushes txs
// through it, and returns the elapsed wall time and final height.
func runDurable(cfg core.Config, txs, blockSize int) (time.Duration, uint64, error) {
	cfg.Nodes = 4
	cfg.Protocol = core.PBFT
	cfg.Arch = core.OX
	cfg.BlockSize = blockSize
	if cfg.Timeout == 0 {
		cfg.Timeout = 300 * time.Millisecond
	}
	c, err := core.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	c.Start()
	defer c.Stop()
	start := time.Now()
	for i := 0; i < txs; i++ {
		tx := &types.Transaction{ID: fmt.Sprintf("e11-%d", i),
			Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("k%d", i%17), Delta: 1}}}
		if err := c.Submit(tx); err != nil {
			return 0, 0, err
		}
	}
	c.Flush()
	if !c.Await(core.AwaitSpec{Txs: txs, Timeout: 60 * time.Second}) {
		return 0, 0, fmt.Errorf("cluster processed %d/%d", c.Node(0).ProcessedTxs(), txs)
	}
	elapsed := time.Since(start)
	return elapsed, c.Node(0).Chain().Height(), nil
}
