package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"permchain/internal/core"
	"permchain/internal/sharding/shardcore"
	"permchain/internal/sharding/sharper"
	"permchain/internal/store"
	"permchain/internal/types"
	"permchain/internal/workload"
)

// E16HorizontalScaling is the capstone experiment of the unified Shards
// API: one deployment shape (per-shard 4-node chains under the flattened
// protocol), swept over shard count × cross-shard ratio, plus a
// deterministic safety arm that crashes one participant mid-2PC and
// audits atomicity across recovery.
//
// Two claims are measured:
//
//  1. weak scaling — offered load grows with the deployment (fixed
//     transactions per shard), so aggregate throughput at 0% cross-shard
//     traffic must grow near-linearly with shards: intra-shard
//     transactions never coordinate. Shard committees carry a modeled
//     LAN link latency so commit rounds are latency-bound and shards'
//     waits overlap, as they would across real machines. Cross-shard
//     ratio then erodes the gain: every spanning transaction pays lock +
//     prepare + decide rounds in each participant.
//
//  2. all-or-nothing under crash — a participant shard is killed after
//     its PREPARE is durable but before any outcome lands; the spanning
//     receipt must stay pending (no subset commit), the lock must
//     survive to recovery, and RecoverShard must finish the transaction
//     from the WAL decision records. VerifyCrossShardAtomicity then
//     audits every shard's ledger for commit/abort disagreements.
func E16HorizontalScaling(quick bool) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "horizontal scaling: aggregate tps vs shard count × cross-shard ratio, with crash-recovery atomicity audit",
		Claim:   "intra-shard capacity scales near-linearly with shards; cross-shard coordination taxes it in proportion to the spanning ratio; a participant crash mid-2PC never yields a subset commit or a lost lock",
		Columns: []string{"arm", "shards", "cross %", "tps", "committed", "aborted", "keys", "locks leaked", "audit"},
	}

	shardCounts := []int{1, 2, 4}
	crossFracs := []float64{0, 0.10}
	txPerShard, keysPerShard := 400, 4096
	latency := 500 * time.Microsecond
	if !quick {
		shardCounts = []int{1, 2, 4, 8}
		crossFracs = []float64{0, 0.05, 0.20}
		txPerShard, keysPerShard = 2000, 16384 // 8 shards × 16384 = 131k keys
	}
	if raceEnabled {
		// Race instrumentation costs ~10× CPU; keep the sweep in the
		// latency-bound regime it models instead of going compute-bound.
		latency *= 4
	}

	for _, shards := range shardCounts {
		for _, cf := range crossFracs {
			if shards == 1 && cf > 0 {
				continue // a single shard has no cross-shard traffic
			}
			cfg := shardedConfig(shards, "sharper")
			cfg.Sharding.IntraShardLatency = latency
			s, err := shardcore.New(cfg, sharper.New())
			if err != nil {
				return nil, err
			}
			s.Start()
			gen := workload.New(16)
			txs := gen.Sharded(workload.ShardedConfig{
				Txs: txPerShard * shards, Shards: shards,
				KeysPerShard: keysPerShard, CrossFraction: cf,
			})
			dur, committed, aborted := driveSharded(s, txs, 8*shards)
			leaked := s.LockCount()
			audit := "ok"
			if err := s.VerifyCrossShardAtomicity(); err != nil {
				audit = err.Error()
			}
			t.AddRow("scaling", shards, fmt.Sprintf("%.0f%%", cf*100),
				tps(committed, dur), committed, aborted, shards*keysPerShard, leaked, audit)
			s.Stop()
			if audit != "ok" {
				return t, fmt.Errorf("E16: atomicity audit failed at %d shards, %.0f%% cross: %s", shards, cf*100, audit)
			}
			if leaked != 0 {
				return t, fmt.Errorf("E16: %d locks leaked at %d shards, %.0f%% cross", leaked, shards, cf*100)
			}
		}
	}

	if err := e16SafetyArm(t, quick); err != nil {
		return t, err
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("weak scaling: %d txs per shard over %d keys/shard, 8 client workers per shard; committee link latency %v so commit rounds are latency-bound and shards overlap", txPerShard, keysPerShard, latency),
		"safety arm: participant killed after durable PREPARE, before any outcome; receipt must stay pending until RecoverShard resolves the in-doubt transaction from its WAL decision records")
	return t, nil
}

// e16SafetyArm runs the deterministic crash-recovery check: no
// cross-shard transaction may commit on a strict subset of its
// participants, even when one participant dies mid-2PC and is recovered
// from its WAL.
func e16SafetyArm(t *Table, quick bool) error {
	dir, err := os.MkdirTemp("", "permchain-e16-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cfg := shardedConfig(2, "sharper")
	cfg.Sharding.CrossTimeout = 10 * time.Second
	cfg.Store = &store.Config{Dir: dir, SnapshotEvery: 16}
	s, err := shardcore.New(cfg, sharper.New())
	if err != nil {
		return err
	}
	s.Start()
	defer s.Stop()

	// Background cross-shard traffic, one victim transaction. The hook
	// kills shard 1 the moment the victim's PREPAREs are all durable.
	var once sync.Once
	s.AfterPrepare = func(txID string) {
		if txID == "e16-victim" {
			once.Do(func() { s.CrashShard(1) })
		}
	}
	warm := 8
	if !quick {
		warm = 64
	}
	for i := 0; i < warm; i++ {
		r, err := s.SubmitAsync(&types.Transaction{ID: fmt.Sprintf("e16-warm-%d", i), Ops: []types.Op{
			{Code: types.OpAdd, Key: workload.ShardKey(0, i), Delta: -1},
			{Code: types.OpAdd, Key: workload.ShardKey(1, i), Delta: 1},
		}})
		if err != nil {
			return err
		}
		if err := r.Wait(30 * time.Second); err != nil {
			return fmt.Errorf("E16 warmup tx %d: %w", i, err)
		}
	}
	r, err := s.SubmitAsync(&types.Transaction{ID: "e16-victim", Ops: []types.Op{
		{Code: types.OpAdd, Key: workload.ShardKey(0, 999), Delta: -5},
		{Code: types.OpAdd, Key: workload.ShardKey(1, 999), Delta: 5},
	}})
	if err != nil {
		return err
	}
	// The receipt must NOT settle while shard 1 is down — settling now
	// would be a subset commit.
	if err := r.Wait(2 * time.Second); err != core.ErrAwaitTimeout {
		return fmt.Errorf("E16: victim settled with a dead participant: %v (status %v)", err, r.Status())
	}
	if s.LockCount() == 0 {
		return fmt.Errorf("E16: in-doubt transaction lost its locks before recovery")
	}
	if err := s.RecoverShard(1); err != nil {
		return fmt.Errorf("E16: recovery: %w", err)
	}
	if err := r.Wait(30 * time.Second); err != nil {
		return fmt.Errorf("E16: victim after recovery: %w", err)
	}
	leaked := s.LockCount()
	audit := "ok"
	if err := s.VerifyCrossShardAtomicity(); err != nil {
		audit = err.Error()
	}
	t.AddRow("safety (crash mid-2PC)", 2, "100%", "-", warm+1, 0, 2, leaked, audit)
	if audit != "ok" {
		return fmt.Errorf("E16: post-recovery audit: %s", audit)
	}
	if leaked != 0 {
		return fmt.Errorf("E16: %d locks leaked after recovery", leaked)
	}
	if got := s.Shard(1).Node(0).Store().GetInt(workload.ShardKey(1, 999)); got != 5 {
		return fmt.Errorf("E16: recovered shard applied %d, want 5", got)
	}
	return nil
}
