package ops

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"permchain/internal/core"
	"permchain/internal/mempool"
	"permchain/internal/obs"
	"permchain/internal/types"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func mkTx(i int) *types.Transaction {
	return &types.Transaction{
		ID:     fmt.Sprintf("ops-tx-%d", i),
		Client: types.NodeID(i % 3),
		Ops:    []types.Op{{Code: types.OpPut, Key: fmt.Sprintf("k%d", i%17), Value: []byte(fmt.Sprintf("v%d", i))}},
	}
}

// TestEndpointsUnderLoad drives a live chain while hammering every
// endpoint concurrently — the acceptance shape: all endpoints answer,
// with the right content types, while blocks commit under them.
func TestEndpointsUnderLoad(t *testing.T) {
	o := obs.New()
	ring := obs.NewLogRing(128, slog.LevelDebug)
	o.SetLogHandler(ring.Handler())
	c, err := core.New(core.Config{
		Nodes: 4, Protocol: core.PBFT, BlockSize: 8,
		FlushEvery: 5 * time.Millisecond, Obs: o,
		Mempool: &mempool.Config{Capacity: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	srv, err := Serve(Config{Addr: "127.0.0.1:0", Chain: c,
		Window: 20 * time.Millisecond, LogRing: ring})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Submit(mkTx(i))
			if i%50 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Health endpoints may legitimately answer 503 while the cluster is
	// being hammered (view churn, backlog); the contract under load is
	// that every endpoint answers with well-formed output, not that the
	// cluster stays green.
	paths := []struct {
		path     string
		wantType string
		may503   bool
	}{
		{"/metrics", obs.ContentTypeProm, false},
		{"/metrics.json", "application/json", false},
		{"/healthz", "application/json", true},
		{"/readyz", "application/json", true},
		{"/status", "application/json", false},
		{"/traces?limit=10", "application/json", false},
		{"/logs?limit=10", "application/json", false},
		{"/debug/pprof/cmdline", "", false},
	}
	for round := 0; round < 5; round++ {
		for _, p := range paths {
			code, body, ctype := get(t, srv.URL()+p.path)
			if code != http.StatusOK && !(p.may503 && code == http.StatusServiceUnavailable) {
				t.Fatalf("%s: status %d, body %.200s", p.path, code, body)
			}
			if p.wantType != "" && !strings.HasPrefix(ctype, p.wantType) {
				t.Fatalf("%s: content-type %q, want prefix %q", p.path, ctype, p.wantType)
			}
			if strings.HasPrefix(p.wantType, "application/json") && !json.Valid([]byte(body)) {
				t.Fatalf("%s: malformed JSON: %.200s", p.path, body)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if !c.Await(core.AwaitSpec{Nodes: []int{0}, Txs: 1, Timeout: 5 * time.Second}) {
		t.Fatal("no transactions committed under load")
	}

	// The committed chain must show in /status and in /metrics.
	code, body, _ := get(t, srv.URL()+"/status")
	if code != http.StatusOK {
		t.Fatalf("/status: %d", code)
	}
	var st struct {
		Protocol string `json:"protocol"`
		Height   uint64 `json:"height"`
		Health   string `json:"health"`
		Nodes    []struct {
			ID int `json:"id"`
		} `json:"nodes"`
		Mempool *struct {
			Admitted int64 `json:"Admitted"`
		} `json:"mempool"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status JSON: %v", err)
	}
	if st.Protocol != "pbft" || len(st.Nodes) != 4 || st.Height == 0 {
		t.Fatalf("unexpected status: %+v", st)
	}
	if st.Mempool == nil || st.Mempool.Admitted == 0 {
		t.Fatalf("status missing mempool stats: %+v", st.Mempool)
	}

	_, metrics, _ := get(t, srv.URL()+"/metrics")
	if !strings.Contains(metrics, "# TYPE core_committed_txs counter") {
		t.Fatalf("metrics missing committed counter:\n%.500s", metrics)
	}

	// /traces serves completed lifecycles with hex digests.
	_, traces, _ := get(t, srv.URL()+"/traces?limit=5")
	var spans []struct {
		Digest string           `json:"digest"`
		Phases map[string]int64 `json:"phases"`
	}
	if err := json.Unmarshal([]byte(traces), &spans); err != nil {
		t.Fatalf("/traces JSON: %v", err)
	}
	if len(spans) == 0 || spans[0].Digest == "" || len(spans[0].Phases) == 0 {
		t.Fatalf("no usable spans in /traces: %s", traces)
	}

	// /logs serves the structured events the components emitted.
	_, logsBody, _ := get(t, srv.URL()+"/logs")
	var events []obs.LogEvent
	if err := json.Unmarshal([]byte(logsBody), &events); err != nil {
		t.Fatalf("/logs JSON: %v", err)
	}
}

// TestWindowedRates pins the windowed-vs-lifetime distinction: /metrics
// reports <name>_rate from the last sampled window, not from lifetime
// totals, and /metrics.json carries both sections separately.
func TestWindowedRates(t *testing.T) {
	o := obs.New()
	srv, err := Serve(Config{Addr: "127.0.0.1:0", Obs: o, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	o.Add("bench/ops", 100)
	time.Sleep(2 * time.Millisecond) // non-zero window elapsed
	srv.Sampler().Tick()             // window 1: 100
	o.Add("bench/ops", 5)
	time.Sleep(2 * time.Millisecond)
	srv.Sampler().Tick() // window 2: 5

	_, body, ctype := get(t, srv.URL()+"/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("content-type %q", ctype)
	}
	var doc struct {
		Lifetime struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"lifetime"`
		Window struct {
			Rates map[string]float64 `json:"rates"`
			Snap  struct {
				Counters map[string]int64 `json:"counters"`
			} `json:"snapshot"`
		} `json:"window"`
		Windows int `json:"windows_kept"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if doc.Lifetime.Counters["bench/ops"] != 105 {
		t.Fatalf("lifetime = %d, want 105", doc.Lifetime.Counters["bench/ops"])
	}
	if doc.Window.Snap.Counters["bench/ops"] != 5 {
		t.Fatalf("window = %d, want 5 (windowed, not lifetime)", doc.Window.Snap.Counters["bench/ops"])
	}
	if doc.Window.Rates["bench/ops"] <= 0 {
		t.Fatalf("window rate missing: %v", doc.Window.Rates)
	}
	if doc.Windows != 2 {
		t.Fatalf("windows_kept = %d, want 2", doc.Windows)
	}

	_, text, _ := get(t, srv.URL()+"/metrics")
	if !strings.Contains(text, "bench_ops 105") {
		t.Fatalf("lifetime line missing:\n%s", text)
	}
	if !strings.Contains(text, "# TYPE bench_ops_rate gauge") {
		t.Fatalf("windowed rate family missing:\n%s", text)
	}
	// The rate line must reflect the 5-count window, not the 105 lifetime:
	// with an elapsed of a few ms the lifetime-rate would be tens of
	// thousands; assert the numerator by reconstructing it.
	win, ok := srv.Sampler().Last()
	if !ok {
		t.Fatal("no last window")
	}
	want := fmt.Sprintf("bench_ops_rate %g", float64(5)/win.Elapsed.Seconds())
	if !strings.Contains(text, want) {
		t.Fatalf("rate line %q missing:\n%s", want, text)
	}
}

// TestServeWithoutChain is the permbench profile-only mode: metrics,
// health and pprof answer; /status and /logs 404 cleanly.
func TestServeWithoutChain(t *testing.T) {
	o := obs.New()
	srv, err := Serve(Config{Addr: "127.0.0.1:0", Obs: o, Window: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _, _ := get(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	if code, _, _ := get(t, srv.URL()+"/status"); code != http.StatusNotFound {
		t.Fatalf("/status without chain: %d, want 404", code)
	}
	if code, _, _ := get(t, srv.URL()+"/logs"); code != http.StatusNotFound {
		t.Fatalf("/logs without ring: %d, want 404", code)
	}
}
