package ops

import (
	"net/http"
	"testing"
	"time"

	"permchain/internal/core"
	"permchain/internal/obs"
	"permchain/internal/types"
)

// TestReadyzFlipsAcrossPartition is the acceptance walk for the health
// model: a committing cluster is ready; a partition that stalls
// consensus while work is pending flips /readyz to 503; healing the
// partition brings it back to 200. This is the scripted chaos
// transition healthy -> degraded -> healthy, observed purely through
// the ops plane.
func TestReadyzFlipsAcrossPartition(t *testing.T) {
	o := obs.New()
	// Fast stall thresholds so the degraded window arrives in test time;
	// churn thresholds pushed out of the way so this test isolates the
	// liveness check (churn has its own unit tests).
	o.Health = obs.NewHealth(obs.HealthConfig{
		Cadence:        25 * time.Millisecond,
		StallDegraded:  2,    // 50ms of stalled pending work => degraded
		StallUnhealthy: 4000, // out of reach for this test
		ChurnWindow:    time.Second,
		ChurnDegraded:  100000,
		ChurnUnhealthy: 200000,
	})
	c, err := core.New(core.Config{
		Nodes: 4, Protocol: core.PBFT, BlockSize: 4,
		FlushEvery: 5 * time.Millisecond, Timeout: 150 * time.Millisecond,
		Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	srv, err := Serve(Config{Addr: "127.0.0.1:0", Chain: c, Window: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	readyz := func() int {
		code, _, _ := get(t, srv.URL()+"/readyz")
		return code
	}

	// Phase 1: healthy. Commit a batch and confirm readiness.
	for i := 0; i < 4; i++ {
		if err := c.Submit(mkTx(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Await(core.AwaitSpec{Nodes: []int{0}, Txs: 4, Timeout: 10 * time.Second}) {
		t.Fatal("initial batch did not commit")
	}
	if code := readyz(); code != http.StatusOK {
		_, body, _ := get(t, srv.URL()+"/readyz")
		t.Fatalf("readyz before fault: %d, body %s", code, body)
	}

	// Phase 2: split 2-2 so no side holds a quorum, and queue work that
	// cannot commit. The stall clock starts with the pending submissions;
	// /readyz must flip to 503. (A 2-2 split rather than isolating the
	// primary: the primary's pre-prepare still reaches node 1, so both
	// sides run the view-change machinery and the heal can complete it —
	// the same recovery path the chaos partition schedules exercise.)
	c.Network().Partition([]types.NodeID{0, 1}, []types.NodeID{2, 3})
	for i := 100; i < 104; i++ {
		c.Submit(mkTx(i))
	}
	c.Flush()
	deadline := time.Now().Add(10 * time.Second)
	for readyz() != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			_, body, _ := get(t, srv.URL()+"/readyz")
			t.Fatalf("readyz never flipped to 503 under partition; last body: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 3: heal. Fresh commits reset the stall clock; /readyz must
	// recover to 200. Keep nudging the cluster with flushes and fresh
	// submissions — recovery needs a view change plus re-forwarded
	// requests, and the health verdict follows the first commits.
	c.Network().Heal()
	deadline = time.Now().Add(20 * time.Second)
	i := 200
	for readyz() != http.StatusOK {
		if time.Now().After(deadline) {
			_, body, _ := get(t, srv.URL()+"/readyz")
			t.Fatalf("readyz never recovered after heal; last body: %s", body)
		}
		c.Submit(mkTx(i))
		i++
		c.Flush()
		time.Sleep(20 * time.Millisecond)
	}
}
