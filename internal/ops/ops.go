// Package ops is the live operations plane: one HTTP server per node (or
// per in-process cluster, which is the same thing here — every replica
// shares one *obs.Obs) exposing what a running chain is doing right now.
//
//	/metrics       Prometheus text format: lifetime instruments plus
//	               windowed <name>_rate gauges and <name>_window
//	               summaries derived from the background rate sampler
//	/metrics.json  the same, structured: lifetime snapshot + last window
//	/healthz       liveness — 503 only when the health model says
//	               Unhealthy (restart-worthy)
//	/readyz        readiness — 503 unless fully Healthy (degraded nodes
//	               leave rotation before they fall over)
//	/status        chain position: height, state hash, per-protocol
//	               view/round gauges, per-node watermarks, mempool and
//	               network summaries
//	/traces        the most recent completed transaction lifecycles
//	/logs          the most recent structured log events (when a LogRing
//	               is attached)
//	/debug/pprof/  the standard Go profiler endpoints
//
// The server deliberately reads everything live at request time — there
// is no cached status to go stale while the chain wedges.
package ops

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"permchain/internal/core"
	"permchain/internal/obs"
)

// Config shapes an ops server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9464". ":0" picks a
	// free port (the chosen address is available via Server.Addr).
	Addr string
	// Chain is the running chain the server reports on. Optional: without
	// it /status returns 404 but metrics, health, traces, logs and pprof
	// still serve — the profile-only mode permbench uses.
	Chain *core.Chain
	// Obs supplies the registry, tracer, health tracker and loggers.
	// Defaults to Chain.Obs() when nil.
	Obs *obs.Obs
	// Window is the rate-sampling interval (default 1s); WindowKeep
	// bounds the retained ring of windows (default 60).
	Window     time.Duration
	WindowKeep int
	// LogRing, when set, backs /logs.
	LogRing *obs.LogRing
}

// Server is a running ops endpoint. Close it when the chain stops.
type Server struct {
	cfg     Config
	o       *obs.Obs
	sampler *obs.WindowSampler
	ln      net.Listener
	srv     *http.Server
	started time.Time
}

// Serve binds cfg.Addr, starts the rate sampler, and serves the ops
// endpoints on a background goroutine.
func Serve(cfg Config) (*Server, error) {
	o := cfg.Obs
	if o == nil && cfg.Chain != nil {
		o = cfg.Chain.Obs()
	}
	s := &Server{cfg: cfg, o: o, started: time.Now()}
	if o != nil && o.Reg != nil {
		s.sampler = obs.NewWindowSampler(o.Reg, cfg.Window, cfg.WindowKeep)
		s.sampler.Start()
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.sampler != nil {
			s.sampler.Stop()
		}
		return nil, fmt.Errorf("ops: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/traces", s.handleTraces)
	mux.HandleFunc("/logs", s.handleLogs)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	if o != nil {
		o.Logger("ops").Info("ops server listening", "addr", s.Addr())
	}
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Sampler returns the background rate sampler (nil without a registry).
func (s *Server) Sampler() *obs.WindowSampler { return s.sampler }

// Close stops the sampler and shuts the listener down.
func (s *Server) Close() error {
	if s.sampler != nil {
		s.sampler.Stop()
	}
	return s.srv.Close()
}

func (s *Server) health() *obs.Health {
	if s.o == nil {
		return nil
	}
	return s.o.Health
}

// handleMetrics serves the Prometheus text format: the lifetime snapshot
// first, then the windowed families — a <name>_rate gauge (per-second
// over the last sampled window) for every counter that moved, and a
// <name>_window summary re-deriving quantiles from only the window's
// observations. Operators therefore read current throughput and current
// tail latency, not lifetime averages.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.o == nil || s.o.Reg == nil {
		http.Error(w, "no metrics registry attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", obs.ContentTypeProm)
	snap := s.o.Reg.Snapshot()
	if err := snap.WritePrometheus(w); err != nil {
		return
	}
	if s.sampler == nil {
		return
	}
	win, ok := s.sampler.Last()
	if !ok || win.Elapsed <= 0 {
		return
	}
	sec := win.Elapsed.Seconds()
	names := make([]string, 0, len(win.Snap.Counters))
	for k, v := range win.Snap.Counters {
		if v != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		n := obs.PromName(k) + "_rate"
		fmt.Fprintf(w, "# HELP %s per-second rate of %s over the last %v window\n# TYPE %s gauge\n%s %g\n",
			n, obs.PromName(k), s.sampler.Interval(), n, n, float64(win.Snap.Counters[k])/sec)
	}
	names = names[:0]
	for k, hs := range win.Snap.Histograms {
		if hs.Count != 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		hs := win.Snap.Histograms[k]
		n := obs.PromName(k) + "_window"
		fmt.Fprintf(w,
			"# HELP %s %s over the last %v window\n# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
			n, obs.PromName(k), s.sampler.Interval(), n, n, hs.P50, n, hs.P95, n, hs.P99, n, hs.Sum, n, hs.Count)
	}
}

// metricsJSON is the /metrics.json document.
type metricsJSON struct {
	Lifetime obs.Snapshot `json:"lifetime"`
	Window   *windowJSON  `json:"window,omitempty"`
	Windows  int          `json:"windows_kept"`
}

type windowJSON struct {
	Start   time.Time          `json:"start"`
	End     time.Time          `json:"end"`
	Elapsed time.Duration      `json:"elapsed_ns"`
	Rates   map[string]float64 `json:"rates,omitempty"`
	Snap    obs.Snapshot       `json:"snapshot"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	if s.o == nil || s.o.Reg == nil {
		http.Error(w, "no metrics registry attached", http.StatusNotFound)
		return
	}
	doc := metricsJSON{Lifetime: s.o.Reg.Snapshot()}
	if s.sampler != nil {
		doc.Windows = len(s.sampler.Windows(0))
		if win, ok := s.sampler.Last(); ok {
			doc.Window = &windowJSON{Start: win.Start, End: win.End,
				Elapsed: win.Elapsed, Rates: win.Rates(), Snap: win.Snap}
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleHealthz is liveness: only an Unhealthy verdict — stalled
// consensus past the unhealthy multiplier, a view-change storm, a
// storage error — returns 503. Degraded stays 200 here so orchestrators
// shed load (readyz) without restart-looping a node that is merely slow.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := s.health().Report()
	code := http.StatusOK
	if rep.Status == obs.Unhealthy {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}

// handleReadyz is readiness: anything short of fully Healthy returns 503.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rep := s.health().Report()
	code := http.StatusOK
	if rep.Status != obs.Healthy {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}

// statusDoc wraps core.Status with the server's own vitals.
type statusDoc struct {
	core.Status
	Health obs.HealthStatus `json:"health"`
	Uptime time.Duration    `json:"uptime_ns"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Chain == nil {
		http.Error(w, "no chain attached", http.StatusNotFound)
		return
	}
	doc := statusDoc{
		Status: s.cfg.Chain.Status(),
		Health: s.health().Report().Status,
		Uptime: time.Since(s.started),
	}
	writeJSON(w, http.StatusOK, doc)
}

// traceJSON flattens a span for JSON: hex digest plus phase->timestamp.
type traceJSON struct {
	Digest string           `json:"digest"`
	Seq    uint64           `json:"seq,omitempty"`
	Phases map[string]int64 `json:"phases"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.o == nil || s.o.Tracer == nil {
		http.Error(w, "no tracer attached", http.StatusNotFound)
		return
	}
	limit := queryInt(r, "limit", 50)
	spans := s.o.Tracer.Recent(limit)
	out := make([]traceJSON, 0, len(spans))
	for i := range spans {
		sp := &spans[i]
		t := traceJSON{Digest: sp.Digest.Hex(), Seq: sp.Seq,
			Phases: make(map[string]int64)}
		for _, ph := range obs.Phases() {
			if sp.Has(ph) {
				t.Phases[ph.String()] = sp.At[ph]
			}
		}
		out = append(out, t)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	if s.cfg.LogRing == nil {
		http.Error(w, "no log ring attached", http.StatusNotFound)
		return
	}
	limit := queryInt(r, "limit", 100)
	writeJSON(w, http.StatusOK, s.cfg.LogRing.Recent(limit))
}

func queryInt(r *http.Request, key string, def int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return def
	}
	return n
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
