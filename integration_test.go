package permchain

// Cross-layer integration tests: every consensus protocol × every
// processing architecture, plus fault injection on full chains. These are
// the "does the whole tower stand up" checks on top of the per-package
// unit tests.

import (
	"fmt"
	"testing"
	"time"

	"permchain/internal/network"
	"permchain/internal/types"
)

// TestProtocolArchitectureMatrix runs a small workload through all 18
// protocol × architecture combinations and checks full replication.
func TestProtocolArchitectureMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test is slow")
	}
	protocols := []Protocol{PBFT, Raft, Paxos, Tendermint, HotStuff, IBFT}
	archs := []Architecture{OX, OXII, XOV}
	for _, p := range protocols {
		for _, a := range archs {
			p, a := p, a
			t.Run(fmt.Sprintf("%v_%v", p, a), func(t *testing.T) {
				chain, err := NewChain(Config{
					Nodes: 4, Protocol: p, Arch: a,
					BlockSize: 4, Timeout: 400 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				chain.Start()
				defer chain.Stop()
				const k = 8
				for i := 0; i < k; i++ {
					tx := NewTransaction(fmt.Sprintf("%v-%v-%d", p, a, i),
						Add(fmt.Sprintf("k%d", i), int64(i+1)))
					if err := chain.Submit(tx); err != nil {
						t.Fatal(err)
					}
				}
				chain.Flush()
				if !chain.Await(AwaitSpec{Txs: k, Timeout: 30 * time.Second}) {
					t.Fatalf("stalled at %d/%d", chain.Node(0).ProcessedTxs(), k)
				}
				if err := chain.VerifyReplication(); err != nil {
					t.Fatal(err)
				}
				var total int64
				for i := 0; i < k; i++ {
					total += chain.Node(0).Store().GetInt(fmt.Sprintf("k%d", i))
				}
				if total != 36 { // 1+2+...+8
					t.Fatalf("state total = %d, want 36", total)
				}
			})
		}
	}
}

// TestChainSurvivesFollowerCrash partitions one non-primary replica away
// mid-stream; the remaining 3 of 4 (=2f+1) must keep committing, ledgers
// staying identical among the survivors.
func TestChainSurvivesFollowerCrash(t *testing.T) {
	net := network.New()
	chain, err := NewChain(Config{
		Nodes: 4, Protocol: PBFT, Arch: OX,
		BlockSize: 2, Timeout: 400 * time.Millisecond, Net: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()

	for i := 0; i < 4; i++ {
		if err := chain.Submit(NewTransaction(fmt.Sprintf("pre-%d", i), Add("k", 1))); err != nil {
			t.Fatal(err)
		}
	}
	chain.Flush()
	if !chain.Await(AwaitSpec{Txs: 4, Timeout: 15 * time.Second}) {
		t.Fatal("pre-crash txs stalled")
	}

	// Cut node 3 (a follower in view 0) off.
	net.Partition([]types.NodeID{3})
	for i := 0; i < 4; i++ {
		if err := chain.Submit(NewTransaction(fmt.Sprintf("post-%d", i), Add("k", 1))); err != nil {
			t.Fatal(err)
		}
	}
	chain.Flush()
	// Node 0 (still connected) must process all 8.
	if !chain.Await(AwaitSpec{Nodes: []int{0}, Txs: 8, Timeout: 20 * time.Second}) {
		t.Fatalf("survivors stalled at %d/8", chain.Node(0).ProcessedTxs())
	}
	if got := chain.Node(0).Store().GetInt("k"); got != 8 {
		t.Fatalf("k = %d", got)
	}
	// Survivors 0,1,2 agree.
	for i := 1; i <= 2; i++ {
		if !chain.Await(AwaitSpec{Nodes: []int{0, i}, Txs: 8, Timeout: 20 * time.Second}) {
			t.Fatalf("node %d lagging", i)
		}
		if !chain.Node(0).Chain().EqualTo(chain.Node(i).Chain()) {
			t.Fatalf("survivor %d ledger diverged", i)
		}
	}

	// Heal: the cut node catches up via PBFT state transfer.
	net.Heal()
	if !chain.Await(AwaitSpec{Txs: 8, Timeout: 30 * time.Second}) {
		t.Fatalf("node 3 never caught up: %d/8", chain.Node(3).ProcessedTxs())
	}
	if err := chain.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
}

// TestChainSurvivesLeaderCrash cuts the view-0 primary; a view change
// must elect a new primary and keep the chain live.
func TestChainSurvivesLeaderCrash(t *testing.T) {
	net := network.New()
	chain, err := NewChain(Config{
		Nodes: 4, Protocol: PBFT, Arch: OXII,
		BlockSize: 2, Timeout: 300 * time.Millisecond, Net: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()

	// Node 0 is both the PBFT view-0 primary and the chain's submission
	// entry point; partitioning it kills the primary while the batcher
	// keeps running (submissions reach consensus via node 0's replica,
	// which is cut off... so instead cut node 1 after moving the view).
	// Simpler deterministic scenario: cut node 0's *peers'* view of it by
	// isolating it AFTER submission reaches the replica: submissions are
	// handed to replica 0 in-process, and PBFT broadcasts requests, so
	// peers learn of them before the partition. Submit first, then cut.
	for i := 0; i < 6; i++ {
		if err := chain.Submit(NewTransaction(fmt.Sprintf("t-%d", i), Add("k", 1))); err != nil {
			t.Fatal(err)
		}
	}
	chain.Flush()
	time.Sleep(50 * time.Millisecond) // let request broadcasts land
	net.Partition([]types.NodeID{0})

	// The survivors (1,2,3) must decide all 6 via view change.
	if !chain.Await(AwaitSpec{Nodes: []int{1, 2, 3}, Txs: 6, Timeout: 30 * time.Second}) {
		t.Fatalf("survivors stalled: n1=%d n2=%d n3=%d of 6",
			chain.Node(1).ProcessedTxs(), chain.Node(2).ProcessedTxs(), chain.Node(3).ProcessedTxs())
	}
	if !chain.Node(1).Chain().EqualTo(chain.Node(2).Chain()) {
		t.Fatal("survivor ledgers diverged")
	}
	if got := chain.Node(1).Store().GetInt("k"); got != 6 {
		t.Fatalf("k = %d on survivors", got)
	}
}
