#!/bin/sh
# Repo verification: static analysis plus the full test suite under the
# race detector. This is the tier-1 gate (see ROADMAP.md) — run it before
# every commit. The chaos matrix (chaoscheck_test.go) and all protocol
# recovery tests are part of the suite, so a green run covers the §2.2
# safety/liveness assertions too. The race detector is mandatory for
# changes touching internal/consensus, internal/network, internal/chaos,
# internal/mempool, internal/quorumcert, internal/ops, internal/sharding
# or internal/wire — everything there is multi-goroutine by construction
# (the mempool's capacity/dedup invariants are asserted under concurrent
# submitters; the ops server is hammered concurrently with a committing
# cluster; quorumcert key provisioning is lazy under a shared lock; the
# sharding suite runs concurrent overlapping cross-shard 2PCs and
# kill-9-mid-commit recovery; the wire codec's registry, intern table and
# buffer pools are shared by every sending and receiving goroutine).
set -eu

cd "$(dirname "$0")"

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: OK"
