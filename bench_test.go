package permchain

// One benchmark per experiment in DESIGN.md's index: running
// `go test -bench=. -benchmem` regenerates every table/figure claim the
// paper makes. The printed tables are the artifact; ns/op measures one
// full experiment execution.

import (
	"testing"
	"time"

	"permchain/internal/bench"
)

func runExperiment(b *testing.B, fn func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkE1_Figure1_FiveNodeReplication regenerates Figure 1: five
// nodes, each with an identical copy of the hash-chained ledger.
func BenchmarkE1_Figure1_FiveNodeReplication(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E1Figure1(100) })
}

// BenchmarkE2_Architectures_ContentionSweep regenerates the §2.3.3
// Discussion comparison of OX vs OXII vs XOV across contention levels.
func BenchmarkE2_Architectures_ContentionSweep(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E2Architectures(2000, 100, 100) })
}

// BenchmarkE3_FabricFamily regenerates the Fabric optimization family
// comparison (FastFabric, Fabric++, FabricSharp, XOX).
func BenchmarkE3_FabricFamily(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E3FabricFamily(2000, 100, 100) })
}

// BenchmarkE4_Confidentiality regenerates the §2.3.1 Discussion
// comparison of Caper views, Fabric channels, and private data
// collections.
func BenchmarkE4_Confidentiality(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E4Confidentiality(60, 20) })
}

// BenchmarkE5_Verifiability regenerates the §2.3.2 Discussion comparison
// of zero-knowledge proofs vs anonymous tokens.
func BenchmarkE5_Verifiability(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E5Verifiability(10, 50) })
}

// BenchmarkE6_ShardingScaling regenerates the §2.3.4 Discussion scaling
// comparison: single-ledger vs sharded designs across cluster counts and
// cross-shard fractions.
func BenchmarkE6_ShardingScaling(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) {
		return bench.E6ShardingScaling(50, []int{2, 4}, []float64{0, 0.1})
	})
}

// BenchmarkE7_CrossShardLatency regenerates the cross-shard latency
// comparison of coordinator-based, flattened, and hierarchical designs.
func BenchmarkE7_CrossShardLatency(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) {
		return bench.E7CrossShardLatency(3, 10*time.Millisecond)
	})
}

// BenchmarkE8_ConsensusProtocols regenerates the consensus substrate
// comparison: throughput and message complexity of all six protocols.
func BenchmarkE8_ConsensusProtocols(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E8ConsensusProtocols(100, 4) })
}

// BenchmarkE9_Ablations regenerates the design-choice ablations: batching,
// message authentication, and attested committee size.
func BenchmarkE9_Ablations(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E9Ablations(300) })
}

// BenchmarkE10_Chaos regenerates the chaos matrix at quick scale: every
// protocol under crash-recovery, partition-heal and full-restart faults.
func BenchmarkE10_Chaos(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E10Chaos(true) })
}

// BenchmarkE11_Durability regenerates the durability comparison: fsync
// policy vs throughput and snapshot interval vs recovery time.
func BenchmarkE11_Durability(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E11Durability(true) })
}

// BenchmarkE12_Pipeline regenerates the commit-pipeline comparison:
// inline vs pipelined commit path under forced fsync and periodic
// snapshots.
func BenchmarkE12_Pipeline(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E12Pipeline(true) })
}

// BenchmarkE13_WorldState regenerates the world-state comparison:
// incremental bucket-tree hashing vs the seed full rescan, and parallel
// OXII execution scaling on the lock-striped store.
func BenchmarkE13_WorldState(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E13WorldState(true) })
}

// BenchmarkE15_QuorumScaling regenerates the vote-aggregation scaling
// comparison: msgs/commit and latency for counted vs aggregated BFT vote
// phases as the cluster grows toward 64 replicas.
func BenchmarkE15_QuorumScaling(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E15QuorumScaling(true) })
}

// BenchmarkE16_HorizontalScaling regenerates the sharded capstone:
// aggregate throughput vs shard count × cross-shard ratio on the unified
// Shards API, plus the crash-recovery atomicity audit.
func BenchmarkE16_HorizontalScaling(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E16HorizontalScaling(true) })
}

// BenchmarkE17_WireCodec regenerates the zero-copy codec profile: frame
// cost and allocs/op per payload, serialized bytes/msg per protocol,
// executor allocation drop, and struct-vs-wire transport throughput.
func BenchmarkE17_WireCodec(b *testing.B) {
	runExperiment(b, func() (*bench.Table, error) { return bench.E17WireCodec(true) })
}
