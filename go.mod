module permchain

go 1.22
