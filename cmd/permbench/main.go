// Command permbench runs the paper-reproduction experiments (E1–E17 in
// DESIGN.md) and prints their tables.
//
// Usage:
//
//	permbench                      # run everything at full scale
//	permbench -quick               # smaller workloads (seconds instead of minutes)
//	permbench -only E2,E5          # run a subset
//	permbench -metrics json        # also dump each experiment's metrics (json|prom)
//	permbench -out BENCH_<id>.json # also write each table+metrics as JSON,
//	                               # <id> replaced by the experiment id
//	permbench -append BENCH_<id>.json # append a dated run record to the
//	                               # JSON-array trajectory at the path —
//	                               # the in-repo perf history CI extends
//	permbench -ops-addr 127.0.0.1:9464 # serve /debug/pprof and /healthz
//	                               # while the experiments run
//	permbench -cpuprofile cpu.pprof  # profile the run (go tool pprof cpu.pprof)
//	permbench -memprofile mem.pprof  # heap profile at exit
//	permbench -allocprofile mem.pprof # same as -memprofile (allocation sites)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"permchain"
	"permchain/internal/bench"
)

// runRecord is one entry in a -append trajectory file: the experiment's
// table stamped with when and how it ran, so successive CI runs build a
// queryable perf history in-repo instead of one-off artifacts.
type runRecord struct {
	Time  time.Time    `json:"time"`
	ID    string       `json:"id"`
	Quick bool         `json:"quick"`
	Table *bench.Table `json:"table"`
}

// appendRun loads the JSON array at path (absent or empty file means an
// empty trajectory), appends a record for this run, and writes it back.
func appendRun(path, id string, quick bool, tbl *bench.Table) error {
	var runs []runRecord
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if jerr := json.Unmarshal(data, &runs); jerr != nil {
			return fmt.Errorf("existing trajectory unreadable: %w", jerr)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	runs = append(runs, runRecord{Time: time.Now().UTC(), ID: id, Quick: quick, Table: tbl})
	data, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	// Indirection so the profile-flushing defers run before the process
	// exits with the failure code.
	os.Exit(run())
}

func run() int {
	quick := flag.Bool("quick", false, "run reduced workloads")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E2,E5)")
	metrics := flag.String("metrics", "", "dump each experiment's metrics snapshot: json or prom")
	out := flag.String("out", "", "write each experiment's table and metrics as JSON to this path; <id> is replaced by the experiment id (e.g. BENCH_<id>.json)")
	appendTo := flag.String("append", "", "append a dated run record per experiment to the JSON-array file at this path; <id> is replaced by the experiment id")
	opsAddr := flag.String("ops-addr", "", "serve the ops plane (pprof, live metrics, health) on this address while experiments run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
	allocprofile := flag.String("allocprofile", "", "alias for -memprofile: write a heap profile (allocation sites) to this file")
	flag.Parse()
	if *allocprofile != "" {
		if *memprofile != "" && *memprofile != *allocprofile {
			fmt.Fprintln(os.Stderr, "-allocprofile and -memprofile name different files; pick one")
			return 2
		}
		*memprofile = *allocprofile
	}
	if *metrics != "" && *metrics != "json" && *metrics != "prom" {
		fmt.Fprintf(os.Stderr, "-metrics must be json or prom, got %q\n", *metrics)
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "-cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize only live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "-memprofile: %v\n", err)
			}
		}()
	}

	if *opsAddr != "" {
		srv, err := permchain.ServeOps(permchain.OpsConfig{Addr: *opsAddr, Obs: permchain.NewObs()})
		if err != nil {
			fmt.Fprintf(os.Stderr, "-ops-addr: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Printf("ops plane on http://%s (profile-only: pprof + health)\n", srv.Addr())
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	type experiment struct {
		id string
		fn func() (*bench.Table, error)
	}
	scale := func(full, quickVal int) int {
		if *quick {
			return quickVal
		}
		return full
	}
	experiments := []experiment{
		{"E1", func() (*bench.Table, error) { return bench.E1Figure1(scale(200, 40)) }},
		{"E2", func() (*bench.Table, error) {
			return bench.E2Architectures(scale(4000, 400), 100, scale(200, 0))
		}},
		{"E3", func() (*bench.Table, error) {
			return bench.E3FabricFamily(scale(4000, 400), 100, scale(200, 0))
		}},
		{"E4", func() (*bench.Table, error) {
			return bench.E4Confidentiality(scale(200, 30), scale(60, 10))
		}},
		{"E5", func() (*bench.Table, error) { return bench.E5Verifiability(scale(40, 5), scale(200, 20)) }},
		{"E6", func() (*bench.Table, error) {
			if *quick {
				return bench.E6ShardingScaling(30, []int{2}, []float64{0.1})
			}
			return bench.E6ShardingScaling(150, []int{2, 4, 8}, []float64{0, 0.1, 0.3})
		}},
		{"E7", func() (*bench.Table, error) {
			if *quick {
				return bench.E7CrossShardLatency(2, 10*time.Millisecond)
			}
			return bench.E7CrossShardLatency(5, 20*time.Millisecond)
		}},
		{"E8", func() (*bench.Table, error) {
			return bench.E8ConsensusProtocols(scale(300, 30), 4)
		}},
		{"E9", func() (*bench.Table, error) { return bench.E9Ablations(scale(1000, 120)) }},
		{"E10", func() (*bench.Table, error) { return bench.E10Chaos(*quick) }},
		{"E11", func() (*bench.Table, error) { return bench.E11Durability(*quick) }},
		{"E12", func() (*bench.Table, error) { return bench.E12Pipeline(*quick) }},
		{"E13", func() (*bench.Table, error) { return bench.E13WorldState(*quick) }},
		{"E14", func() (*bench.Table, error) { return bench.E14Overload(*quick) }},
		{"E15", func() (*bench.Table, error) { return bench.E15QuorumScaling(*quick) }},
		{"E16", func() (*bench.Table, error) { return bench.E16HorizontalScaling(*quick) }},
		{"E17", func() (*bench.Table, error) { return bench.E17WireCodec(*quick) }},
	}

	failed := false
	for _, e := range experiments {
		if !run(e.id) {
			continue
		}
		start := time.Now()
		tbl, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed = true
			continue
		}
		fmt.Println(tbl)
		if *out != "" {
			path := strings.ReplaceAll(*out, "<id>", e.id)
			data, werr := json.MarshalIndent(tbl, "", "  ")
			if werr == nil {
				werr = os.WriteFile(path, append(data, '\n'), 0o644)
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "%s: write %s: %v\n", e.id, path, werr)
				failed = true
			} else {
				fmt.Printf("wrote %s\n", path)
			}
		}
		if *appendTo != "" {
			path := strings.ReplaceAll(*appendTo, "<id>", e.id)
			if err := appendRun(path, e.id, *quick, tbl); err != nil {
				fmt.Fprintf(os.Stderr, "%s: append %s: %v\n", e.id, path, err)
				failed = true
			} else {
				fmt.Printf("appended to %s\n", path)
			}
		}
		if *metrics != "" && tbl.Metrics != nil {
			fmt.Printf("--- %s metrics (%s) ---\n", e.id, *metrics)
			var werr error
			if *metrics == "json" {
				werr = tbl.Metrics.WriteJSON(os.Stdout)
			} else {
				werr = tbl.Metrics.WritePrometheus(os.Stdout)
			}
			if werr != nil {
				fmt.Fprintf(os.Stderr, "%s: metrics dump: %v\n", e.id, werr)
			}
			fmt.Println()
		}
		fmt.Printf("(%s completed in %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		return 1
	}
	return 0
}
