// Command chainctl starts a small permissioned blockchain and drives it
// from stdin — a quick way to poke at the public API.
//
// Usage:
//
//	chainctl [-nodes 4 | -n 4] [-protocol pbft] [-arch oxii]
//	         [-aggregate] [-batch-votes] [-metrics json|prom]
//	         [-store DIR] [-fsync always|interval|off] [-snap-every N]
//	         [-mempool-cap N] [-ops-addr HOST:PORT] [-log LEVEL]
//	chainctl -shards 4 [-cross-protocol sharper] [-nodes 4] [-store DIR]
//	chainctl -ops-addr HOST:PORT status
//
// -shards starts a sharded deployment instead of a single chain: N
// shards, each a full -nodes-replica chain, with deterministic key
// placement ("s<shard>/..."-prefixed keys pin their shard, others hash)
// and durable cross-shard two-phase commit. -cross-protocol selects the
// coordination strategy (sharper|ahl|saguaro|resilientdb). With -store,
// each shard persists under its own subdirectory and an existing tree is
// recovered, finishing in-doubt cross-shard transactions from the WAL.
//
// -n is shorthand for -nodes and overrides it — convenient when scripting
// cluster-size sweeps. -aggregate switches the BFT vote phases (PBFT,
// HotStuff) to Schnorr quorum certificates; -batch-votes coalesces
// outbound vote traffic per destination. Both surface their counters under
// vote_agg in /status and `chainctl status`.
//
// -metrics dumps the chain's full metrics snapshot (consensus phase
// latencies, network counters, engine stage timings) in the chosen format
// on exit; the `metrics` stdin command prints it at any point.
//
// -store makes the chain durable: every node persists its blocks to a
// segmented write-ahead log under DIR, -fsync selects the durability
// policy, and -snap-every writes a state snapshot every N blocks. An
// existing DIR is recovered — ledger and state come back from disk and
// the chain continues from the recovered height.
//
// -mempool-cap routes submissions through the bounded admission layer
// with the given hard capacity: overload is shed with typed rejections
// and retry-after hints instead of queueing without bound, and the
// `mempool` stdin command prints the pool's live accounting.
//
// -ops-addr serves the live ops plane on the given address while the
// chain runs: /metrics (Prometheus, with windowed rates), /metrics.json,
// /healthz, /readyz, /status, /traces, /logs, and /debug/pprof. With the
// `status` subcommand the same flag names the server to query instead:
// `chainctl -ops-addr 127.0.0.1:9464 status` pretty-prints a running
// node's /status and /healthz and exits non-zero when it is unhealthy.
//
// -log emits the structured component log (consensus, network, store,
// mempool, chaos) to stderr at the given level: debug|info|warn|error.
//
// Commands on stdin:
//
//	add <key> <delta>          increment an integer key
//	put <key> <value>          set a key
//	transfer <from> <to> <amt> move balance between keys
//	get <key>                  read a key from node 0's state
//	height                     print ledger heights of all nodes
//	verify                     check the replication invariant
//	metrics                    print the current metrics snapshot (JSON)
//	mempool                    print admission-pool stats (needs -mempool-cap)
//	quit
//
// In sharded mode (-shards) the same data commands apply — a
// transaction whose keys span shards runs 2PC and reports its per-shard
// commit heights — plus `shard <key>` (print a key's home shard),
// `locks` (live 2PL lock count) and `verify` audits cross-shard
// atomicity over every shard's ledger.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"permchain"
	"permchain/internal/obs"
	"permchain/internal/store"
)

// statusCmd implements `chainctl -ops-addr HOST:PORT status`: query a
// running node's ops plane and pretty-print its position and health.
// Exits 0 when healthy, 1 when degraded/unhealthy or unreachable.
func statusCmd(addr string) int {
	if addr == "" {
		fmt.Fprintln(os.Stderr, "status needs -ops-addr HOST:PORT of a running node")
		return 2
	}
	base := "http://" + addr
	fetch := func(path string, v any) (int, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, json.Unmarshal(body, v)
	}

	var st struct {
		Protocol   string           `json:"protocol"`
		Arch       string           `json:"arch"`
		Cluster    int              `json:"cluster"`
		Height     uint64           `json:"height"`
		StateHash  string           `json:"state_hash"`
		LastCommit time.Time        `json:"last_commit"`
		Views      map[string]int64 `json:"views"`
		VoteAgg    map[string]int64 `json:"vote_agg"`
		Nodes      []struct {
			ID            int    `json:"id"`
			Height        uint64 `json:"height"`
			DurableHeight uint64 `json:"durable_height"`
			ProcessedTxs  int    `json:"processed_txs"`
		} `json:"nodes"`
		Mempool *struct {
			Occupancy int `json:"Occupancy"`
		} `json:"mempool"`
		Network struct {
			Sent         int64            `json:"sent"`
			Delivered    int64            `json:"delivered"`
			Dropped      int64            `json:"dropped"`
			DropsByCause map[string]int64 `json:"drops_by_cause"`
		} `json:"network"`
	}
	if _, err := fetch("/status", &st); err != nil {
		fmt.Fprintf(os.Stderr, "GET %s/status: %v\n", base, err)
		return 1
	}
	fmt.Printf("%s/%s, %d replicas, at height %d, state %.16s…\n",
		st.Protocol, st.Arch, st.Cluster, st.Height, st.StateHash)
	if !st.LastCommit.IsZero() {
		fmt.Printf("last commit %s ago\n", time.Since(st.LastCommit).Round(time.Millisecond))
	}
	if len(st.Views) > 0 {
		keys := make([]string, 0, len(st.Views))
		for k := range st.Views {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s: %d\n", k, st.Views[k])
		}
	}
	if len(st.VoteAgg) > 0 {
		keys := make([]string, 0, len(st.VoteAgg))
		for k := range st.VoteAgg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("%s: %d\n", k, st.VoteAgg[k])
		}
	}
	for _, n := range st.Nodes {
		fmt.Printf("node %d: height %d (durable %d), %d txs\n",
			n.ID, n.Height, n.DurableHeight, n.ProcessedTxs)
	}
	if st.Mempool != nil {
		fmt.Printf("mempool occupancy %d\n", st.Mempool.Occupancy)
	}
	fmt.Printf("network: %d sent, %d delivered, %d dropped", st.Network.Sent, st.Network.Delivered, st.Network.Dropped)
	if len(st.Network.DropsByCause) > 0 {
		fmt.Printf(" %v", st.Network.DropsByCause)
	}
	fmt.Println()

	var rep struct {
		Status string `json:"status"`
		Checks []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Reason string `json:"reason"`
		} `json:"checks"`
	}
	code, err := fetch("/healthz", &rep)
	if err != nil {
		fmt.Fprintf(os.Stderr, "GET %s/healthz: %v\n", base, err)
		return 1
	}
	fmt.Printf("health: %s (healthz %d)\n", rep.Status, code)
	for _, c := range rep.Checks {
		fmt.Printf("  %-20s %-10s %s\n", c.Name, c.Status, c.Reason)
	}
	if rep.Status != "healthy" {
		return 1
	}
	return 0
}

func protocolFromName(s string) (permchain.Protocol, error) {
	switch strings.ToLower(s) {
	case "pbft":
		return permchain.PBFT, nil
	case "raft":
		return permchain.Raft, nil
	case "paxos":
		return permchain.Paxos, nil
	case "tendermint":
		return permchain.Tendermint, nil
	case "hotstuff":
		return permchain.HotStuff, nil
	case "ibft":
		return permchain.IBFT, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func archFromName(s string) (permchain.Architecture, error) {
	switch strings.ToUpper(s) {
	case "OX":
		return permchain.OX, nil
	case "OXII":
		return permchain.OXII, nil
	case "XOV":
		return permchain.XOV, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

// runSharded drives the stdin REPL against a sharded deployment: the
// same data commands, with cross-shard transactions running durable 2PC
// and reporting per-shard commit heights.
func runSharded(cfg permchain.Config) int {
	var (
		sc  *permchain.ShardedChain
		err error
	)
	if cfg.Store != nil {
		sc, err = permchain.OpenShardedChain(cfg)
	} else {
		sc, err = permchain.NewShardedChain(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	sc.Start()
	defer sc.Stop()
	fmt.Printf("sharded chain up: %d shards × %d nodes, %s cross-shard protocol\n",
		sc.NumShards(), cfg.Nodes, sc.Protocol().Name())
	fmt.Println(`keys prefixed "s<shard>/" pin their shard; others hash`)

	txSeq := 0
	submit := func(ops ...permchain.Op) {
		txSeq++
		id := fmt.Sprintf("cli-%d", txSeq)
		r, err := sc.SubmitAsync(permchain.NewTransaction(id, ops...))
		if err == nil {
			err = r.Wait(30 * time.Second)
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("committed %s, per-shard heights %v\n", id, r.Heights())
	}
	shardOf := func(key string) permchain.ShardID { return sc.Placement().ShardOf(key) }

	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !in.Scan() {
			return 0
		}
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return 0
		case "add":
			if len(fields) != 3 {
				fmt.Println("usage: add <key> <delta>")
				continue
			}
			d, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				fmt.Println("bad delta:", err)
				continue
			}
			submit(permchain.Add(fields[1], d))
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			submit(permchain.Put(fields[1], []byte(strings.Join(fields[2:], " "))))
		case "transfer":
			if len(fields) != 4 {
				fmt.Println("usage: transfer <from> <to> <amount>")
				continue
			}
			amt, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				fmt.Println("bad amount:", err)
				continue
			}
			if shardOf(fields[1]) != shardOf(fields[2]) {
				// A single Transfer op cannot span shards; move value as a
				// debit/credit pair coordinated by 2PC instead.
				submit(permchain.Add(fields[1], -amt), permchain.Add(fields[2], amt))
				continue
			}
			submit(permchain.Transfer(fields[1], fields[2], amt))
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			home := shardOf(fields[1])
			v, ver, ok := sc.Shard(home).Node(0).Store().Get(fields[1])
			if !ok {
				fmt.Printf("(not set; home shard %v)\n", home)
				continue
			}
			fmt.Printf("%s (version %v, shard %v)\n", v, ver, home)
		case "shard":
			if len(fields) != 2 {
				fmt.Println("usage: shard <key>")
				continue
			}
			fmt.Printf("%s places on shard %v\n", fields[1], shardOf(fields[1]))
		case "height":
			for i := 0; i < sc.NumShards(); i++ {
				ch := sc.Shard(permchain.ShardID(i))
				fmt.Printf("shard %d: height %d, %d txs\n", i, ch.Node(0).Chain().Height(), ch.Node(0).ProcessedTxs())
			}
		case "locks":
			fmt.Printf("%d live 2PL locks\n", sc.LockCount())
		case "verify":
			ok := true
			for i := 0; i < sc.NumShards(); i++ {
				if err := sc.Shard(permchain.ShardID(i)).VerifyReplication(); err != nil {
					fmt.Printf("shard %d VIOLATION: %v\n", i, err)
					ok = false
				}
			}
			if err := sc.VerifyCrossShardAtomicity(); err != nil {
				fmt.Println("cross-shard VIOLATION:", err)
				ok = false
			}
			if ok {
				fmt.Printf("replication holds on all %d shards; cross-shard atomicity audit clean (%d commits, %d aborts)\n",
					sc.NumShards(), sc.CrossCommitted(), sc.Aborted())
			}
		default:
			fmt.Println("commands: add put transfer get shard height locks verify quit")
		}
	}
}

func main() {
	nodes := flag.Int("nodes", 4, "replica count")
	nShort := flag.Int("n", 0, "shorthand for -nodes; overrides it when set")
	aggregate := flag.Bool("aggregate", false, "aggregate BFT votes into Schnorr quorum certificates (pbft, hotstuff)")
	batchVotes := flag.Bool("batch-votes", false, "coalesce outbound vote traffic per destination")
	protoName := flag.String("protocol", "pbft", "pbft|raft|paxos|tendermint|hotstuff|ibft")
	archName := flag.String("arch", "oxii", "ox|oxii|xov")
	metrics := flag.String("metrics", "", "dump the metrics snapshot on exit: json or prom")
	storeDir := flag.String("store", "", "durable store directory; empty runs in-memory only")
	fsyncName := flag.String("fsync", "always", "durability policy for -store: always|interval|off")
	snapEvery := flag.Uint64("snap-every", 16, "write a state snapshot every N blocks (0 disables; needs -store)")
	mempoolCap := flag.Int("mempool-cap", 0, "route submissions through the bounded admission layer with this capacity (0 disables)")
	shards := flag.Int("shards", 0, "run a sharded deployment with this many shards (0 = single chain)")
	crossProto := flag.String("cross-protocol", "sharper", "cross-shard strategy for -shards: sharper|ahl|saguaro|resilientdb")
	opsAddr := flag.String("ops-addr", "", "serve the HTTP ops plane on this address (or, with the status subcommand, the address to query)")
	logLevel := flag.String("log", "", "emit structured logs to stderr: debug|info|warn|error")
	flag.Parse()
	if *nShort > 0 {
		*nodes = *nShort
	}
	if *metrics != "" && *metrics != "json" && *metrics != "prom" {
		fmt.Fprintf(os.Stderr, "-metrics must be json or prom, got %q\n", *metrics)
		os.Exit(2)
	}
	if flag.Arg(0) == "status" {
		os.Exit(statusCmd(*opsAddr))
	}

	proto, err := protocolFromName(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	arch, err := archFromName(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := obs.New()
	var handlers []slog.Handler
	if *logLevel != "" {
		var lv slog.Level
		if err := lv.UnmarshalText([]byte(*logLevel)); err != nil {
			fmt.Fprintf(os.Stderr, "-log: %v\n", err)
			os.Exit(2)
		}
		handlers = append(handlers, slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	}
	var ring *permchain.LogRing
	if *opsAddr != "" {
		ring = permchain.NewLogRing(1024, slog.LevelDebug)
		handlers = append(handlers, ring.Handler())
	}
	if len(handlers) > 0 {
		o.SetLogHandler(obs.TeeHandler(handlers...))
	}
	cfg := permchain.Config{
		Nodes: *nodes, Protocol: proto, Arch: arch,
		BlockSize: 1, Timeout: 500 * time.Millisecond,
		Obs:            o,
		AggregateVotes: *aggregate, BatchVotes: *batchVotes,
	}
	if *mempoolCap > 0 {
		cfg.Mempool = &permchain.MempoolConfig{Capacity: *mempoolCap}
	}
	if *shards > 0 {
		cfg.Obs = nil // per-shard chains would contend on one registry
		cfg.BlockSize = 4
		cfg.Sharding = &permchain.ShardingConfig{Shards: *shards, Protocol: *crossProto}
		if *storeDir != "" {
			fsync, err := store.ParseFsyncPolicy(*fsyncName)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			cfg.Store = &permchain.StoreConfig{Dir: *storeDir, Fsync: fsync, SnapshotEvery: *snapEvery}
		}
		os.Exit(runSharded(cfg))
	}
	var chain *permchain.Chain
	if *storeDir != "" {
		fsync, err := store.ParseFsyncPolicy(*fsyncName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Store = &permchain.StoreConfig{Dir: *storeDir, Fsync: fsync, SnapshotEvery: *snapEvery}
		// OpenChain recovers an existing directory and creates a fresh one.
		chain, err = permchain.OpenChain(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		var err error
		chain, err = permchain.NewChain(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	chain.Start()
	defer chain.Stop()
	if *opsAddr != "" {
		srv, err := permchain.ServeOps(permchain.OpsConfig{Addr: *opsAddr, Chain: chain, LogRing: ring})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("ops plane on http://%s\n", srv.Addr())
	}
	if h := chain.Node(0).Chain().Height(); h > 0 {
		fmt.Printf("recovered %d blocks from %s\n", h, *storeDir)
	}
	if *metrics != "" {
		defer func() {
			snap := o.Reg.Snapshot()
			var werr error
			if *metrics == "json" {
				werr = snap.WriteJSON(os.Stdout)
			} else {
				werr = snap.WritePrometheus(os.Stdout)
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "metrics dump:", werr)
			}
		}()
	}
	fmt.Printf("chain up: %d nodes, %v, %v\n", *nodes, proto, arch)

	txSeq := 0
	submit := func(ops ...permchain.Op) {
		txSeq++
		id := fmt.Sprintf("cli-%d", txSeq)
		before := chain.Node(0).ProcessedTxs()
		if err := chain.Submit(permchain.NewTransaction(id, ops...)); err != nil {
			fmt.Println("error:", err)
			return
		}
		chain.Flush()
		// Wait for every node, not just node 0, so a `verify` right after
		// a commit cannot observe replicas mid-apply.
		if !chain.Await(permchain.AwaitSpec{Txs: before + 1, Timeout: 10 * time.Second}) {
			fmt.Println("timed out waiting for commit")
			return
		}
		fmt.Printf("committed %s at height %d\n", id, chain.Node(0).Chain().Height())
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "add":
			if len(fields) != 3 {
				fmt.Println("usage: add <key> <delta>")
				continue
			}
			d, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				fmt.Println("bad delta:", err)
				continue
			}
			submit(permchain.Add(fields[1], d))
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			submit(permchain.Put(fields[1], []byte(strings.Join(fields[2:], " "))))
		case "transfer":
			if len(fields) != 4 {
				fmt.Println("usage: transfer <from> <to> <amount>")
				continue
			}
			amt, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				fmt.Println("bad amount:", err)
				continue
			}
			submit(permchain.Transfer(fields[1], fields[2], amt))
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, ver, ok := chain.Node(0).Store().Get(fields[1])
			if !ok {
				fmt.Println("(not set)")
				continue
			}
			fmt.Printf("%s (version %v)\n", v, ver)
		case "height":
			for i, n := range chain.Nodes() {
				fmt.Printf("node %d: height %d, %d txs\n", i, n.Chain().Height(), n.ProcessedTxs())
			}
		case "verify":
			if err := chain.VerifyReplication(); err != nil {
				fmt.Println("VIOLATION:", err)
			} else {
				fmt.Println("replication invariant holds on all nodes")
			}
		case "metrics":
			if err := o.Reg.Snapshot().WriteJSON(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case "mempool":
			p := chain.Mempool()
			if p == nil {
				fmt.Println("no admission layer (start with -mempool-cap)")
				continue
			}
			st := p.Stats()
			fmt.Printf("occupancy %d/%d (high-water %d): %d pooled, %d inflight\n",
				st.Occupancy, p.Config().Capacity, st.MaxOccupancy, st.Pooled, st.Inflight)
			fmt.Printf("admitted %d, deduped %d, shed %d full + %d quota; %d active clients, drain %.1f tx/s\n",
				st.Admitted, st.Deduped, st.RejectedFull, st.RejectedQuota,
				st.ActiveClients, p.DrainRate())
		default:
			fmt.Println("commands: add put transfer get height verify metrics mempool quit")
		}
	}
}
