// Command chainctl starts a small permissioned blockchain and drives it
// from stdin — a quick way to poke at the public API.
//
// Usage:
//
//	chainctl [-nodes 4] [-protocol pbft] [-arch oxii] [-metrics json|prom]
//	         [-store DIR] [-fsync always|interval|off] [-snap-every N]
//	         [-mempool-cap N]
//
// -metrics dumps the chain's full metrics snapshot (consensus phase
// latencies, network counters, engine stage timings) in the chosen format
// on exit; the `metrics` stdin command prints it at any point.
//
// -store makes the chain durable: every node persists its blocks to a
// segmented write-ahead log under DIR, -fsync selects the durability
// policy, and -snap-every writes a state snapshot every N blocks. An
// existing DIR is recovered — ledger and state come back from disk and
// the chain continues from the recovered height.
//
// -mempool-cap routes submissions through the bounded admission layer
// with the given hard capacity: overload is shed with typed rejections
// and retry-after hints instead of queueing without bound, and the
// `mempool` stdin command prints the pool's live accounting.
//
// Commands on stdin:
//
//	add <key> <delta>          increment an integer key
//	put <key> <value>          set a key
//	transfer <from> <to> <amt> move balance between keys
//	get <key>                  read a key from node 0's state
//	height                     print ledger heights of all nodes
//	verify                     check the replication invariant
//	metrics                    print the current metrics snapshot (JSON)
//	mempool                    print admission-pool stats (needs -mempool-cap)
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"permchain"
	"permchain/internal/obs"
	"permchain/internal/store"
)

func protocolFromName(s string) (permchain.Protocol, error) {
	switch strings.ToLower(s) {
	case "pbft":
		return permchain.PBFT, nil
	case "raft":
		return permchain.Raft, nil
	case "paxos":
		return permchain.Paxos, nil
	case "tendermint":
		return permchain.Tendermint, nil
	case "hotstuff":
		return permchain.HotStuff, nil
	case "ibft":
		return permchain.IBFT, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

func archFromName(s string) (permchain.Architecture, error) {
	switch strings.ToUpper(s) {
	case "OX":
		return permchain.OX, nil
	case "OXII":
		return permchain.OXII, nil
	case "XOV":
		return permchain.XOV, nil
	}
	return 0, fmt.Errorf("unknown architecture %q", s)
}

func main() {
	nodes := flag.Int("nodes", 4, "replica count")
	protoName := flag.String("protocol", "pbft", "pbft|raft|paxos|tendermint|hotstuff|ibft")
	archName := flag.String("arch", "oxii", "ox|oxii|xov")
	metrics := flag.String("metrics", "", "dump the metrics snapshot on exit: json or prom")
	storeDir := flag.String("store", "", "durable store directory; empty runs in-memory only")
	fsyncName := flag.String("fsync", "always", "durability policy for -store: always|interval|off")
	snapEvery := flag.Uint64("snap-every", 16, "write a state snapshot every N blocks (0 disables; needs -store)")
	mempoolCap := flag.Int("mempool-cap", 0, "route submissions through the bounded admission layer with this capacity (0 disables)")
	flag.Parse()
	if *metrics != "" && *metrics != "json" && *metrics != "prom" {
		fmt.Fprintf(os.Stderr, "-metrics must be json or prom, got %q\n", *metrics)
		os.Exit(2)
	}

	proto, err := protocolFromName(*protoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	arch, err := archFromName(*archName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	o := obs.New()
	cfg := permchain.Config{
		Nodes: *nodes, Protocol: proto, Arch: arch,
		BlockSize: 1, Timeout: 500 * time.Millisecond,
		Obs: o,
	}
	if *mempoolCap > 0 {
		cfg.Mempool = &permchain.MempoolConfig{Capacity: *mempoolCap}
	}
	var chain *permchain.Chain
	if *storeDir != "" {
		fsync, err := store.ParseFsyncPolicy(*fsyncName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Store = &permchain.StoreConfig{Dir: *storeDir, Fsync: fsync, SnapshotEvery: *snapEvery}
		// OpenChain recovers an existing directory and creates a fresh one.
		chain, err = permchain.OpenChain(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		var err error
		chain, err = permchain.NewChain(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	chain.Start()
	defer chain.Stop()
	if h := chain.Node(0).Chain().Height(); h > 0 {
		fmt.Printf("recovered %d blocks from %s\n", h, *storeDir)
	}
	if *metrics != "" {
		defer func() {
			snap := o.Reg.Snapshot()
			var werr error
			if *metrics == "json" {
				werr = snap.WriteJSON(os.Stdout)
			} else {
				werr = snap.WritePrometheus(os.Stdout)
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "metrics dump:", werr)
			}
		}()
	}
	fmt.Printf("chain up: %d nodes, %v, %v\n", *nodes, proto, arch)

	txSeq := 0
	submit := func(ops ...permchain.Op) {
		txSeq++
		id := fmt.Sprintf("cli-%d", txSeq)
		before := chain.Node(0).ProcessedTxs()
		if err := chain.Submit(permchain.NewTransaction(id, ops...)); err != nil {
			fmt.Println("error:", err)
			return
		}
		chain.Flush()
		// Wait for every node, not just node 0, so a `verify` right after
		// a commit cannot observe replicas mid-apply.
		if !chain.AwaitAllNodesTxs(before+1, 10*time.Second) {
			fmt.Println("timed out waiting for commit")
			return
		}
		fmt.Printf("committed %s at height %d\n", id, chain.Node(0).Chain().Height())
	}

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "add":
			if len(fields) != 3 {
				fmt.Println("usage: add <key> <delta>")
				continue
			}
			d, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				fmt.Println("bad delta:", err)
				continue
			}
			submit(permchain.Add(fields[1], d))
		case "put":
			if len(fields) < 3 {
				fmt.Println("usage: put <key> <value>")
				continue
			}
			submit(permchain.Put(fields[1], []byte(strings.Join(fields[2:], " "))))
		case "transfer":
			if len(fields) != 4 {
				fmt.Println("usage: transfer <from> <to> <amount>")
				continue
			}
			amt, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				fmt.Println("bad amount:", err)
				continue
			}
			submit(permchain.Transfer(fields[1], fields[2], amt))
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, ver, ok := chain.Node(0).Store().Get(fields[1])
			if !ok {
				fmt.Println("(not set)")
				continue
			}
			fmt.Printf("%s (version %v)\n", v, ver)
		case "height":
			for i, n := range chain.Nodes() {
				fmt.Printf("node %d: height %d, %d txs\n", i, n.Chain().Height(), n.ProcessedTxs())
			}
		case "verify":
			if err := chain.VerifyReplication(); err != nil {
				fmt.Println("VIOLATION:", err)
			} else {
				fmt.Println("replication invariant holds on all nodes")
			}
		case "metrics":
			if err := o.Reg.Snapshot().WriteJSON(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case "mempool":
			p := chain.Mempool()
			if p == nil {
				fmt.Println("no admission layer (start with -mempool-cap)")
				continue
			}
			st := p.Stats()
			fmt.Printf("occupancy %d/%d (high-water %d): %d pooled, %d inflight\n",
				st.Occupancy, p.Config().Capacity, st.MaxOccupancy, st.Pooled, st.Inflight)
			fmt.Printf("admitted %d, deduped %d, shed %d full + %d quota; %d active clients, drain %.1f tx/s\n",
				st.Admitted, st.Deduped, st.RejectedFull, st.RejectedQuota,
				st.ActiveClients, p.DrainRate())
		default:
			fmt.Println("commands: add put transfer get height verify metrics mempool quit")
		}
	}
}
