package permchain

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	chain, err := NewChain(Config{
		Nodes: 4, Protocol: PBFT, Arch: OXII,
		BlockSize: 8, Timeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()

	if err := chain.Submit(NewTransaction("fund", Add("alice", 100))); err != nil {
		t.Fatal(err)
	}
	chain.Flush()
	if !chain.Await(AwaitSpec{Nodes: []int{0}, Txs: 1, Timeout: 10 * time.Second}) {
		t.Fatal("funding stalled")
	}
	if err := chain.Submit(NewTransaction("pay", Transfer("alice", "bob", 30))); err != nil {
		t.Fatal(err)
	}
	chain.Flush()
	if !chain.Await(AwaitSpec{Txs: 2, Timeout: 10 * time.Second}) {
		t.Fatal("payment stalled")
	}
	if err := chain.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	if got := chain.Node(0).Store().GetInt("alice"); got != 70 {
		t.Fatalf("alice = %d", got)
	}
	if got := chain.Node(0).Store().GetInt("bob"); got != 30 {
		t.Fatalf("bob = %d", got)
	}
}

func TestFacadeReceiptsAwaitAndMetrics(t *testing.T) {
	o := NewObs()
	chain, err := NewChain(Config{
		Nodes: 4, Protocol: PBFT, Arch: OX,
		BlockSize: 4, Timeout: 400 * time.Millisecond, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()

	var receipts []*Receipt
	for i := 0; i < 4; i++ {
		r, err := chain.SubmitAsync(NewTransaction(fmt.Sprintf("r%d", i), Add("k", 1)))
		if err != nil {
			t.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	chain.Flush()
	for _, r := range receipts {
		if err := r.Wait(10 * time.Second); err != nil {
			t.Fatalf("%s: %v", r.TxID(), err)
		}
		if r.Status() != TxCommitted || r.Height() == 0 {
			t.Fatalf("%s: status %v height %d", r.TxID(), r.Status(), r.Height())
		}
	}
	if !chain.Await(AwaitSpec{Txs: 4, Timeout: 10 * time.Second}) {
		t.Fatal("cluster did not reach the watermark")
	}

	m := chain.Metrics()
	if m.Counters["core/receipts_resolved"] != 4 {
		t.Fatalf("receipts_resolved = %d", m.Counters["core/receipts_resolved"])
	}
	var json, prom strings.Builder
	if err := m.WriteJSON(&json); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(json.String(), "core/receipts_resolved") {
		t.Fatalf("JSON exposition missing receipt counter:\n%s", json.String())
	}
	if !strings.Contains(prom.String(), "core_receipts_resolved") {
		t.Fatalf("Prometheus exposition missing receipt counter:\n%s", prom.String())
	}
}

func TestOpConstructors(t *testing.T) {
	tx := NewTransaction("t",
		Get("a"), Put("b", []byte("v")), Add("c", 5), Transfer("d", "e", 7), AssertGE("f", 3))
	if len(tx.Ops) != 5 {
		t.Fatalf("ops = %d", len(tx.Ops))
	}
	if tx.Ops[3].Key != "d" || tx.Ops[3].Key2 != "e" || tx.Ops[3].Delta != 7 {
		t.Fatalf("transfer op %+v", tx.Ops[3])
	}
	keys := tx.TouchedKeys()
	if len(keys) != 6 {
		t.Fatalf("touched %v", keys)
	}
}

func TestFacadeAllArchConstants(t *testing.T) {
	for _, a := range []Architecture{OX, OXII, XOV} {
		chain, err := NewChain(Config{Nodes: 4, Arch: a, Timeout: 400 * time.Millisecond})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		chain.Start()
		if err := chain.Submit(NewTransaction(fmt.Sprintf("t-%v", a), Add("k", 1))); err != nil {
			t.Fatal(err)
		}
		chain.Flush()
		if !chain.Await(AwaitSpec{Nodes: []int{0}, Txs: 1, Timeout: 10 * time.Second}) {
			t.Fatalf("%v stalled", a)
		}
		chain.Stop()
	}
}
