package permchain

import (
	"fmt"
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	chain, err := NewChain(Config{
		Nodes: 4, Protocol: PBFT, Arch: OXII,
		BlockSize: 8, Timeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()

	if err := chain.Submit(NewTransaction("fund", Add("alice", 100))); err != nil {
		t.Fatal(err)
	}
	chain.Flush()
	if !chain.AwaitTxs(1, 10*time.Second) {
		t.Fatal("funding stalled")
	}
	if err := chain.Submit(NewTransaction("pay", Transfer("alice", "bob", 30))); err != nil {
		t.Fatal(err)
	}
	chain.Flush()
	if !chain.AwaitAllNodesTxs(2, 10*time.Second) {
		t.Fatal("payment stalled")
	}
	if err := chain.VerifyReplication(); err != nil {
		t.Fatal(err)
	}
	if got := chain.Node(0).Store().GetInt("alice"); got != 70 {
		t.Fatalf("alice = %d", got)
	}
	if got := chain.Node(0).Store().GetInt("bob"); got != 30 {
		t.Fatalf("bob = %d", got)
	}
}

func TestOpConstructors(t *testing.T) {
	tx := NewTransaction("t",
		Get("a"), Put("b", []byte("v")), Add("c", 5), Transfer("d", "e", 7), AssertGE("f", 3))
	if len(tx.Ops) != 5 {
		t.Fatalf("ops = %d", len(tx.Ops))
	}
	if tx.Ops[3].Key != "d" || tx.Ops[3].Key2 != "e" || tx.Ops[3].Delta != 7 {
		t.Fatalf("transfer op %+v", tx.Ops[3])
	}
	keys := tx.TouchedKeys()
	if len(keys) != 6 {
		t.Fatalf("touched %v", keys)
	}
}

func TestFacadeAllArchConstants(t *testing.T) {
	for _, a := range []Architecture{OX, OXII, XOV} {
		chain, err := NewChain(Config{Nodes: 4, Arch: a, Timeout: 400 * time.Millisecond})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		chain.Start()
		if err := chain.Submit(NewTransaction(fmt.Sprintf("t-%v", a), Add("k", 1))); err != nil {
			t.Fatal(err)
		}
		chain.Flush()
		if !chain.AwaitTxs(1, 10*time.Second) {
			t.Fatalf("%v stalled", a)
		}
		chain.Stop()
	}
}
