// A sharded ledger database on SharPer (§2.1.2 + §2.3.4 of the
// tutorial): four Byzantine fault-tolerant clusters each maintain one
// shard of a bank's accounts. Intra-shard transfers settle with one
// cluster-local consensus round; cross-shard transfers run the flattened
// cross-shard consensus among only the involved clusters — no global
// coordinator, and non-overlapping cross-shard transfers proceed in
// parallel.
//
//	go run ./examples/shardeddb
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"permchain/internal/network"
	"permchain/internal/sharding/cluster"
	"permchain/internal/sharding/sharper"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func main() {
	alloc := cluster.NewAllocator(network.New())
	sys := sharper.New(alloc, sharper.Options{Shards: 4, Timeout: 15 * time.Second})
	defer sys.Stop()
	fmt.Println("SharPer up: 4 shards × 4-node BFT clusters, no reference committee")

	// Open 8 accounts, two per shard, with 1000 each.
	type account struct {
		shard types.ShardID
		key   string
	}
	var accounts []account
	for s := types.ShardID(0); s < 4; s++ {
		for i := 0; i < 2; i++ {
			accounts = append(accounts, account{shard: s, key: workload.ShardKey(s, i)})
		}
	}
	for i, a := range accounts {
		tx := &types.Transaction{
			ID: fmt.Sprintf("open-%d", i), Kind: types.TxInternal, Shards: []types.ShardID{a.shard},
			Ops: []types.Op{{Code: types.OpAdd, Key: a.key, Delta: 1000}},
		}
		if err := sys.SubmitIntra(tx); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("opened 8 accounts (2 per shard) with 1000 each")

	// Intra-shard transfer: single cluster, one consensus round.
	intra := &types.Transaction{
		ID: "intra-1", Kind: types.TxInternal, Shards: []types.ShardID{0},
		Ops: []types.Op{{Code: types.OpTransfer,
			Key: workload.ShardKey(0, 0), Key2: workload.ShardKey(0, 1), Delta: 200}},
	}
	start := time.Now()
	if err := sys.SubmitIntra(intra); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intra-shard transfer committed in %v\n", time.Since(start).Round(time.Microsecond))

	// Cross-shard transfers between non-overlapping shard pairs run in
	// parallel — SharPer's headline property.
	cross := func(id string, a, b types.ShardID, amt int64) *types.Transaction {
		return &types.Transaction{
			ID: id, Kind: types.TxCross, Shards: []types.ShardID{a, b},
			Ops: []types.Op{
				{Code: types.OpAdd, Key: workload.ShardKey(a, 0), Delta: -amt},
				{Code: types.OpAdd, Key: workload.ShardKey(b, 0), Delta: amt},
			},
		}
	}
	start = time.Now()
	var wg sync.WaitGroup
	for i, pair := range [][2]types.ShardID{{0, 1}, {2, 3}} {
		wg.Add(1)
		go func(i int, a, b types.ShardID) {
			defer wg.Done()
			if err := sys.SubmitCross(cross(fmt.Sprintf("cross-%d", i), a, b, 50)); err != nil {
				log.Fatal(err)
			}
		}(i, pair[0], pair[1])
	}
	wg.Wait()
	fmt.Printf("2 non-overlapping cross-shard transfers committed in parallel in %v\n",
		time.Since(start).Round(time.Microsecond))

	// Balance sheet and the conservation invariant.
	total := int64(0)
	fmt.Println("\nbalances by shard:")
	for s := types.ShardID(0); s < 4; s++ {
		st := sys.Shards()[s].Store()
		b0 := st.GetInt(workload.ShardKey(s, 0))
		b1 := st.GetInt(workload.ShardKey(s, 1))
		total += b0 + b1
		fmt.Printf("  shard %v: %s=%d %s=%d\n", s, workload.ShardKey(s, 0), b0, workload.ShardKey(s, 1), b1)
	}
	fmt.Printf("total across shards: %d (must be 8000 — money conserved across shards)\n", total)
	if total != 8000 {
		log.Fatal("conservation violated!")
	}

	// Storage is partitioned, not replicated: each shard only stores its
	// own keys.
	fmt.Printf("total keys stored across all clusters: %d (8 accounts, no replication blow-up)\n",
		sys.TotalStorage())
	fmt.Printf("cross-shard aborts so far: %d\n", sys.Aborted())
}
