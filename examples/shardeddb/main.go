// A sharded ledger database on the unified Shards API (§2.1.2 + §2.3.4
// of the tutorial): four shards, each a full 4-node Byzantine
// fault-tolerant chain, hold one partition of a bank's accounts.
// Deterministic placement routes each key to its shard; intra-shard
// transfers settle with one shard-local consensus round; cross-shard
// transfers run durable two-phase commit whose prepare/commit decisions
// are ordered through each participant shard's own consensus — no
// global coordinator under the default flattened (SharPer) protocol,
// and non-overlapping cross-shard transfers proceed in parallel.
//
//	go run ./examples/shardeddb
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"permchain"
	"permchain/internal/types"
	"permchain/internal/workload"
)

func main() {
	sc, err := permchain.NewShardedChain(permchain.Config{
		Nodes:      4,
		DisableSig: true,
		Sharding: &permchain.ShardingConfig{
			Shards:   4,
			Protocol: "sharper",
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	sc.Start()
	defer sc.Stop()
	fmt.Println("ShardedChain up: 4 shards × 4-node BFT chains, flattened cross-shard protocol")

	submit := func(tx *permchain.Transaction) *permchain.ShardReceipt {
		r, err := sc.SubmitAsync(tx)
		if err == nil {
			err = r.Wait(30 * time.Second)
		}
		if err != nil {
			log.Fatalf("%s: %v", tx.ID, err)
		}
		return r
	}

	// Open 8 accounts, two per shard, with 1000 each. Keys carry the
	// "s<shard>/" placement prefix, so each lands on its home shard.
	var accounts []string
	for s := types.ShardID(0); s < 4; s++ {
		for i := 0; i < 2; i++ {
			accounts = append(accounts, workload.ShardKey(s, i))
		}
	}
	for i, key := range accounts {
		submit(permchain.NewTransaction(fmt.Sprintf("open-%d", i), permchain.Add(key, 1000)))
	}
	fmt.Println("opened 8 accounts (2 per shard) with 1000 each")

	// Intra-shard transfer: one shard, one consensus round.
	start := time.Now()
	submit(permchain.NewTransaction("intra-1",
		permchain.Transfer(workload.ShardKey(0, 0), workload.ShardKey(0, 1), 200)))
	fmt.Printf("intra-shard transfer committed in %v\n", time.Since(start).Round(time.Microsecond))

	// Cross-shard transfers between non-overlapping shard pairs run in
	// parallel — the flattened protocol's headline property. Each one's
	// receipt settles only when both participant shards have durably
	// committed their slice.
	cross := func(id string, a, b types.ShardID, amt int64) *permchain.Transaction {
		return permchain.NewTransaction(id,
			permchain.Add(workload.ShardKey(a, 0), -amt),
			permchain.Add(workload.ShardKey(b, 0), amt))
	}
	start = time.Now()
	var wg sync.WaitGroup
	for i, pair := range [][2]types.ShardID{{0, 1}, {2, 3}} {
		wg.Add(1)
		go func(i int, a, b types.ShardID) {
			defer wg.Done()
			r := submit(cross(fmt.Sprintf("cross-%d", i), a, b, 50))
			fmt.Printf("  cross-%d settled with per-shard heights %v\n", i, r.Heights())
		}(i, pair[0], pair[1])
	}
	wg.Wait()
	fmt.Printf("2 non-overlapping cross-shard transfers committed in parallel in %v\n",
		time.Since(start).Round(time.Microsecond))

	// Balance sheet and the conservation invariant.
	total := int64(0)
	fmt.Println("\nbalances by shard:")
	for s := types.ShardID(0); s < 4; s++ {
		st := sc.Shard(s).Node(0).Store()
		b0 := st.GetInt(workload.ShardKey(s, 0))
		b1 := st.GetInt(workload.ShardKey(s, 1))
		total += b0 + b1
		fmt.Printf("  shard %v: %s=%d %s=%d\n", s, workload.ShardKey(s, 0), b0, workload.ShardKey(s, 1), b1)
	}
	fmt.Printf("total across shards: %d (must be 8000 — money conserved across shards)\n", total)
	if total != 8000 {
		log.Fatal("conservation violated!")
	}

	// Storage is partitioned, not replicated: each shard only stores its
	// own keys.
	fmt.Printf("total keys stored across all shards: %d (8 accounts, no replication blow-up)\n",
		sc.TotalStorage())
	fmt.Printf("cross-shard commits: %d, aborts: %d\n", sc.CrossCommitted(), sc.Aborted())
}
