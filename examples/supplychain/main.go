// Supply chain management on Caper (§2.1.1 + §2.3.1 of the tutorial):
// three enterprises — Supplier, Manufacturer, Carrier — collaborate under
// an SLA. Each runs confidential internal transactions on its own view of
// the DAG ledger; cross-enterprise hand-offs are globally ordered and
// visible to all; and SLA conformance is checked against the shared
// state that every enterprise replicates.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"log"
	"time"

	"permchain/internal/confidential/caper"
	"permchain/internal/types"
)

const (
	supplier     = types.EnterpriseID(1)
	manufacturer = types.EnterpriseID(2)
	carrier      = types.EnterpriseID(3)
)

func main() {
	net, err := caper.NewNetwork(caper.Config{Enterprises: 3, Mode: caper.OrderingService})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()
	fmt.Println("Caper network up: Supplier (e1), Manufacturer (e2), Carrier (e3)")

	// --- Internal, confidential transactions --------------------------------
	// The Manufacturer's production process is a trade secret: these
	// transactions exist only in e2's view.
	internal := func(e types.EnterpriseID, id, key string, delta int64) {
		tx := &types.Transaction{
			ID: id, Kind: types.TxInternal,
			Ops: []types.Op{{Code: types.OpAdd, Key: fmt.Sprintf("e%d/%s", e, key), Delta: delta}},
		}
		if err := net.SubmitInternal(e, tx); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
	}
	internal(supplier, "mine-ore", "ore", 500)
	internal(manufacturer, "calibrate-line", "line-speed", 85)
	internal(manufacturer, "secret-alloy-mix", "alloy-ratio", 7)
	internal(carrier, "fuel-trucks", "fuel", 1200)

	// --- Cross-enterprise hand-offs (the SLA-relevant events) ---------------
	cross := func(id string, ops ...types.Op) {
		tx := &types.Transaction{ID: id, Kind: types.TxCross, Ops: ops}
		if err := net.SubmitCross(tx); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
	}
	// SLA: supplier must keep ≥100 units at the shared depot; manufacturer
	// draws from it; carrier registers shipments.
	cross("deliver-to-depot", types.Op{Code: types.OpAdd, Key: "shared/depot", Delta: 300})
	cross("draw-materials",
		types.Op{Code: types.OpAssertGE, Key: "shared/depot", Delta: 100}, // SLA floor check
		types.Op{Code: types.OpAdd, Key: "shared/depot", Delta: -150},
		types.Op{Code: types.OpAdd, Key: "shared/widgets", Delta: 150},
	)
	cross("ship-order",
		types.Op{Code: types.OpAdd, Key: "shared/widgets", Delta: -100},
		types.Op{Code: types.OpAdd, Key: "shared/shipped", Delta: 100},
	)
	if !net.AwaitCrossCount(3, 20*time.Second) {
		log.Fatal("cross-enterprise transactions did not commit")
	}

	// --- Every enterprise sees the shared state identically ------------------
	fmt.Println("\nshared state as seen by each enterprise:")
	for _, e := range []types.EnterpriseID{supplier, manufacturer, carrier} {
		st := net.Enterprise(e).Store()
		fmt.Printf("  %v: depot=%d widgets=%d shipped=%d\n",
			e, st.GetInt("shared/depot"), st.GetInt("shared/widgets"), st.GetInt("shared/shipped"))
	}

	// --- Confidentiality: the secret never leaves e2 -------------------------
	fmt.Println("\nconfidentiality check:")
	for _, e := range []types.EnterpriseID{supplier, carrier} {
		leaked := false
		for _, k := range net.Enterprise(e).Store().Keys() {
			if k == "e2/alloy-ratio" {
				leaked = true
			}
		}
		fmt.Printf("  %v sees manufacturer's alloy ratio: %v\n", e, leaked)
	}
	fmt.Printf("  manufacturer's own view has %d vertices (internal + cross)\n",
		net.Enterprise(manufacturer).View().Len())
	fmt.Printf("  supplier's view has %d vertices — none of e2's internal process\n",
		net.Enterprise(supplier).View().Len())

	// --- Conformance audit: identical cross history everywhere ---------------
	ref := net.CrossSubsequence(supplier)
	fmt.Printf("\ncross-enterprise history (%d events, identical in all views): %v\n", len(ref), ref)

	// An SLA violation is caught by the assertion: drawing more than the
	// depot floor allows fails validation on every enterprise.
	bad := &types.Transaction{ID: "overdraw", Kind: types.TxCross, Ops: []types.Op{
		{Code: types.OpAssertGE, Key: "shared/depot", Delta: 100000},
	}}
	if err := net.SubmitCross(bad); err != nil {
		log.Fatal(err)
	}
	net.AwaitCrossCount(4, 20*time.Second)
	fmt.Println("overdraw attempt ordered but failed its SLA assertion on every enterprise (no state change)")
	fmt.Printf("depot after overdraw attempt: %d (unchanged)\n",
		net.Enterprise(supplier).Store().GetInt("shared/depot"))
}
