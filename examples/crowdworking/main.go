// Multi-platform crowdworking with Separ (§2.1.3 + §2.3.2 of the
// tutorial): a driver works for two competing platforms; the FLSA 40-hour
// weekly cap is enforced across both via anonymous work-hour tokens.
// The authority knows how many tokens each worker received but cannot
// link a spent token back to anyone; the platforms can verify every token
// and detect double-spends, but learn nothing about who else the worker
// drives for.
//
//	go run ./examples/crowdworking
package main

import (
	"errors"
	"fmt"
	"log"

	"permchain/internal/verify/separ"
)

func main() {
	const flsaWeeklyHours = 40
	authority, err := separ.NewAuthority(flsaWeeklyHours)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token authority up: %d work-hour tokens per worker per week (FLSA)\n", authority.Budget())

	// The spent-token ledger is shared across platforms; in the full
	// system it is replicated with consensus, here it is the logical view.
	ledger := separ.NewLedger()
	uber := separ.NewPlatform("ride-co", ledger, authority.PublicKey())
	lyft := separ.NewPlatform("lift-co", ledger, authority.PublicKey())

	week := separ.Period("2026-W27")
	driver := separ.NewWorker("driver-42")

	// The driver collects the weekly budget in two requests.
	if err := driver.RequestTokens(authority, week, 25); err != nil {
		log.Fatal(err)
	}
	if err := driver.RequestTokens(authority, week, 15); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("driver holds %d anonymous tokens\n", driver.TokenCount())

	// Requesting one more than the law allows is refused at issuance.
	if err := driver.RequestTokens(authority, week, 1); errors.Is(err, separ.ErrBudgetExceeded) {
		fmt.Println("41st token refused by the authority:", err)
	}

	// The driver works 25 hours for one platform, 15 for the other.
	work := func(p *separ.Platform, hours int) {
		for i := 0; i < hours; i++ {
			tok, err := driver.Take()
			if err != nil {
				log.Fatal(err)
			}
			if err := p.AcceptWork(tok); err != nil {
				log.Fatalf("%s rejected a valid token: %v", p.ID, err)
			}
		}
	}
	work(uber, 25)
	work(lyft, 15)
	fmt.Printf("%s accepted %d hours, %s accepted %d hours (total %d)\n",
		uber.ID, uber.Accepted(), lyft.ID, lyft.Accepted(), ledger.SpentCount())

	// The 41st hour is impossible: no tokens remain anywhere.
	if _, err := driver.Take(); err != nil {
		fmt.Println("41st hour blocked:", err)
	}

	// A platform trying to reuse a token (to inflate reported work) is
	// caught by the shared ledger.
	cheat := separ.NewWorker("driver-42")
	if err := cheat.RequestTokens(authority, "2026-W28", 1); err != nil {
		log.Fatal(err)
	}
	tok, _ := cheat.Take()
	if err := uber.AcceptWork(tok); err != nil {
		log.Fatal(err)
	}
	if err := lyft.AcceptWork(tok); errors.Is(err, separ.ErrDoubleSpend) {
		fmt.Println("double-spend across platforms detected:", err)
	}

	fmt.Println("\nverifiability achieved with one signature check per token —")
	fmt.Println("no platform learned which other platforms the driver works for,")
	fmt.Println("and the authority never saw which tokens were spent where.")
}
