// Quickstart: a four-node PBFT permissioned blockchain processing simple
// payments — the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"permchain"
)

func main() {
	chain, err := permchain.NewChain(permchain.Config{
		Nodes:     4,
		Protocol:  permchain.PBFT,
		Arch:      permchain.OXII,
		BlockSize: 4,
		Timeout:   500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()
	fmt.Println("started a 4-node PBFT chain with parallel (OXII) execution")

	// Fund two accounts, then move value between them.
	txs := []*permchain.Transaction{
		permchain.NewTransaction("fund-alice", permchain.Add("alice", 100)),
		permchain.NewTransaction("fund-bob", permchain.Add("bob", 50)),
		permchain.NewTransaction("pay-1", permchain.Transfer("alice", "bob", 30)),
		permchain.NewTransaction("pay-2", permchain.Transfer("bob", "alice", 10)),
	}
	for _, tx := range txs {
		if err := chain.Submit(tx); err != nil {
			log.Fatal(err)
		}
	}
	chain.Flush()
	if !chain.AwaitAllNodesTxs(len(txs), 15*time.Second) {
		log.Fatal("transactions did not commit in time")
	}

	// Every node independently built the same ledger; prove it.
	if err := chain.VerifyReplication(); err != nil {
		log.Fatalf("replication broken: %v", err)
	}
	fmt.Println("all 4 nodes hold identical ledgers and states")

	for _, acct := range []string{"alice", "bob"} {
		fmt.Printf("%s: %d\n", acct, chain.Node(0).Store().GetInt(acct))
	}
	head := chain.Node(0).Chain().Head()
	fmt.Printf("ledger height %d, head block %v (%d txs on chain)\n",
		head.Header.Height, head.Hash(), chain.Node(0).Chain().TxCount())

	// Inspect provenance: walk the chain.
	for h := uint64(1); h <= head.Header.Height; h++ {
		blk, err := chain.Node(0).Chain().Get(h)
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]string, len(blk.Txs))
		for i, tx := range blk.Txs {
			ids[i] = tx.ID
		}
		fmt.Printf("  block %d (%v ← %v): %v\n", h, blk.Hash(), blk.Header.PrevHash, ids)
	}
}
