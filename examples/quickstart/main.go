// Quickstart: a four-node PBFT permissioned blockchain processing simple
// payments — the minimal end-to-end use of the public API: submit with
// receipts, wait on commit watermarks, read back state and metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"permchain"
)

func main() {
	o := permchain.NewObs()
	chain, err := permchain.NewChain(permchain.Config{
		Nodes:     4,
		Protocol:  permchain.PBFT,
		Arch:      permchain.OXII,
		BlockSize: 4,
		Timeout:   500 * time.Millisecond,
		Obs:       o,
	})
	if err != nil {
		log.Fatal(err)
	}
	chain.Start()
	defer chain.Stop()
	fmt.Println("started a 4-node PBFT chain with parallel (OXII) execution")

	// Fund two accounts, then move value between them. Each submission
	// returns a receipt that settles when the transaction's fate is
	// known.
	txs := []*permchain.Transaction{
		permchain.NewTransaction("fund-alice", permchain.Add("alice", 100)),
		permchain.NewTransaction("fund-bob", permchain.Add("bob", 50)),
		permchain.NewTransaction("pay-1", permchain.Transfer("alice", "bob", 30)),
		permchain.NewTransaction("pay-2", permchain.Transfer("bob", "alice", 10)),
	}
	receipts := make([]*permchain.Receipt, 0, len(txs))
	for _, tx := range txs {
		r, err := chain.SubmitAsync(tx)
		if err != nil {
			log.Fatal(err)
		}
		receipts = append(receipts, r)
	}
	chain.Flush()
	for _, r := range receipts {
		if err := r.Wait(15 * time.Second); err != nil {
			log.Fatalf("%s did not commit: %v", r.TxID(), err)
		}
		fmt.Printf("  %s: %v at height %d\n", r.TxID(), r.Status(), r.Height())
	}
	// Receipts settle when node 0 commits; wait for the whole cluster.
	if !chain.Await(permchain.AwaitSpec{Txs: len(txs), Timeout: 15 * time.Second}) {
		log.Fatal("transactions did not commit in time")
	}

	// Every node independently built the same ledger; prove it.
	if err := chain.VerifyReplication(); err != nil {
		log.Fatalf("replication broken: %v", err)
	}
	fmt.Println("all 4 nodes hold identical ledgers and states")

	for _, acct := range []string{"alice", "bob"} {
		fmt.Printf("%s: %d\n", acct, chain.Node(0).Store().GetInt(acct))
	}
	head := chain.Node(0).Chain().Head()
	fmt.Printf("ledger height %d, head block %v (%d txs on chain)\n",
		head.Header.Height, head.Hash(), chain.Node(0).Chain().TxCount())

	// Inspect provenance: walk the chain.
	for h := uint64(1); h <= head.Header.Height; h++ {
		blk, err := chain.Node(0).Chain().Get(h)
		if err != nil {
			log.Fatal(err)
		}
		ids := make([]string, len(blk.Txs))
		for i, tx := range blk.Txs {
			ids[i] = tx.ID
		}
		fmt.Printf("  block %d (%v ← %v): %v\n", h, blk.Hash(), blk.Header.PrevHash, ids)
	}

	// The chain's metrics registry saw every layer; print a few commit-
	// path numbers and the Prometheus exposition of the rest.
	m := chain.Metrics()
	fmt.Printf("receipts issued/resolved: %d/%d\n",
		m.Counters["core/receipts_issued"], m.Counters["core/receipts_resolved"])
	if err := m.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
