// Confidential payments with zero-knowledge verifiability (§2.3.2):
// a Quorum/Zcash-style asset ledger where amounts live in Pedersen
// commitments. Validators verify that every transfer conserves value, is
// authorized, spends nothing twice, and creates no negative outputs —
// without learning a single amount.
//
//	go run ./examples/confidentialpayments
package main

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"log"
	"math/big"
	"time"

	"permchain/internal/crypto"
	"permchain/internal/verify/confidentialtx"
)

func keypair(name string) (ed25519.PublicKey, ed25519.PrivateKey) {
	seed := sha256.Sum256([]byte("example-" + name))
	priv := ed25519.NewKeyFromSeed(seed[:])
	return priv.Public().(ed25519.PublicKey), priv
}

func main() {
	ledger := confidentialtx.NewLedger()
	alicePub, alicePriv := keypair("alice")
	bobPub, bobPriv := keypair("bob")
	_, malloryPriv := keypair("mallory")

	// The asset gateway mints Alice a note. Only Alice can open it.
	note, err := ledger.Mint(alicePub, alicePriv, 1_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minted a note to alice (amount hidden in a Pedersen commitment)")

	// Alice pays Bob 250, keeping 750 change. The transfer carries two
	// 32-bit range proofs, a conservation proof, and her signature.
	start := time.Now()
	transfer, newNotes, err := ledger.NewTransfer(
		[]*confidentialtx.Note{note},
		[]confidentialtx.OutputSpec{
			{Owner: bobPub, Amount: 250},
			{Owner: alicePub, Amount: 750},
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built transfer with ZK proofs in %v\n", time.Since(start).Round(time.Millisecond))

	// Any validator can check the transfer knowing nothing secret.
	start = time.Now()
	if err := ledger.Verify(transfer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("validator verified conservation + ranges + ownership in %v\n",
		time.Since(start).Round(time.Millisecond))
	if err := ledger.Apply(transfer); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied: %d live notes, %d spent nullifiers\n", ledger.LiveNotes(), ledger.SpentCount())

	fmt.Println("\nattack drills:")

	// 1. Double spend: the consumed note is gone from the live set.
	_, _, err = ledger.NewTransfer([]*confidentialtx.Note{note},
		[]confidentialtx.OutputSpec{{Owner: alicePub, Amount: 1000}})
	fmt.Printf("  1. double spend of a consumed note → %v\n", err)

	// 2. Theft: Mallory signs a spend of Bob's new note with her own key.
	theft, _, err := ledger.NewTransfer(
		[]*confidentialtx.Note{newNotes[0].WithOwnerKey(malloryPriv)},
		[]confidentialtx.OutputSpec{{Owner: alicePub, Amount: 250}})
	if err == nil {
		err = ledger.Apply(theft)
	}
	fmt.Printf("  2. spend of bob's note signed by mallory → %v\n", err)

	// 3. Inflation: a forged output commitment to a larger amount breaks
	// the conservation proof even with a valid range proof attached.
	bobNote := newNotes[0].WithOwnerKey(bobPriv)
	tr, _, err := ledger.NewTransfer([]*confidentialtx.Note{bobNote},
		[]confidentialtx.OutputSpec{{Owner: bobPub, Amount: 250}})
	if err != nil {
		log.Fatal(err)
	}
	g := crypto.DefaultGroup()
	forgedComm, forgedOpen := g.Commit(big.NewInt(9_999))
	rp, err := g.ProveRange(forgedOpen, confidentialtx.AmountBits)
	if err != nil {
		log.Fatal(err)
	}
	tr.Outputs[0].Comm = forgedComm
	tr.Outputs[0].Range = rp
	fmt.Printf("  3. inflated output commitment (breaks tx binding) → %v\n", ledger.Apply(tr))

	fmt.Println("\nall three attacks rejected; no validator ever saw an amount.")
}
